package server

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/gateway"
	"repro/internal/wire"
)

// newTestGateway builds a deterministically ticking gateway with room for
// roughly cap unit-rate flows.
func newTestGateway(tb testing.TB, cap float64) *gateway.Gateway {
	tb.Helper()
	ctrl, err := core.NewCertaintyEquivalent(1e-6, 1, 1)
	if err != nil {
		tb.Fatal(err)
	}
	var lat atomic.Int64
	g, err := gateway.New(gateway.Config{
		Capacity:     cap,
		Controller:   ctrl,
		Estimator:    estimator.NewMemoryless(),
		Shards:       4,
		EstimateRing: 1,
		LatencyClock: func() int64 { return lat.Add(1) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// startServer serves cfg on a loopback listener, failing the test on
// unexpected Serve errors and shutting down at cleanup.
func startServer(tb testing.TB, cfg Config) (*Server, string) {
	tb.Helper()
	if cfg.Gateway == nil {
		cfg.Gateway = newTestGateway(tb, 1e9)
	}
	srv, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if !srv.Draining() {
			if err := srv.Shutdown(ctx); err != nil {
				tb.Errorf("shutdown: %v", err)
			}
		}
		if err := <-done; err != nil {
			tb.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// dial opens a raw protocol connection to addr.
func dial(tb testing.TB, addr string) (net.Conn, *wire.Reader) {
	tb.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	return nc, wire.NewReader(nc)
}

func mustNext(tb testing.TB, r *wire.Reader, f *wire.Frame) {
	tb.Helper()
	if err := r.Next(f); err != nil {
		tb.Fatalf("reading response frame: %v", err)
	}
}

func TestRoundTripEveryRequestOp(t *testing.T) {
	_, addr := startServer(t, Config{})
	nc, rd := dial(t, addr)
	var f wire.Frame

	// Admit a flow, then exercise the per-flow ops against it.
	if _, err := nc.Write(wire.AppendAdmit(nil, 1, 7, 1.5)); err != nil {
		t.Fatal(err)
	}
	mustNext(t, rd, &f)
	if f.Op != wire.OpDecision || f.ReqID != 1 {
		t.Fatalf("got %v req %d, want Decision req 1", f.Op, f.ReqID)
	}
	if f.Decision.Reason != uint8(gateway.ReasonAdmitted) {
		t.Fatalf("admit refused: reason %d", f.Decision.Reason)
	}
	steps := []struct {
		frame []byte
		op    wire.Op
		want  wire.Status
	}{
		{wire.AppendUpdateRate(nil, 2, 7, 2.5), wire.OpAck, wire.StatusOK},
		{wire.AppendTouch(nil, 3, 7), wire.OpAck, wire.StatusOK},
		{wire.AppendPing(nil, 4), wire.OpPong, 0},
		{wire.AppendDepart(nil, 5, 7), wire.OpAck, wire.StatusOK},
		{wire.AppendDepart(nil, 6, 7), wire.OpAck, wire.StatusNotActive},
		{wire.AppendTouch(nil, 7, 99), wire.OpAck, wire.StatusNotActive},
		{wire.AppendUpdateRate(nil, 8, 99, -1), wire.OpAck, wire.StatusInvalidRate},
	}
	for i, s := range steps {
		if _, err := nc.Write(s.frame); err != nil {
			t.Fatal(err)
		}
		mustNext(t, rd, &f)
		if f.Op != s.op || f.ReqID != uint64(i+2) {
			t.Fatalf("step %d: got %v req %d, want %v req %d", i, f.Op, f.ReqID, s.op, i+2)
		}
		if s.op == wire.OpAck && f.Status != s.want {
			t.Fatalf("step %d: got status %v, want %v", i, f.Status, s.want)
		}
	}
}

func TestAdmitBatchFrame(t *testing.T) {
	srv, addr := startServer(t, Config{})
	nc, rd := dial(t, addr)
	enc, err := wire.AppendAdmitBatch(nil, 9, []uint64{1, 2, 1}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(enc); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)
	if f.Op != wire.OpDecisionBatch || f.ReqID != 9 || len(f.Decisions) != 3 {
		t.Fatalf("got %v req %d with %d decisions", f.Op, f.ReqID, len(f.Decisions))
	}
	if f.Decisions[0].Reason != uint8(gateway.ReasonAdmitted) ||
		f.Decisions[1].Reason != uint8(gateway.ReasonAdmitted) ||
		f.Decisions[2].Reason != uint8(gateway.ReasonDuplicate) {
		t.Fatalf("unexpected reasons %+v", f.Decisions)
	}
	snap := srv.Snapshot()
	if snap.Decisions != 3 || snap.Batches != 1 {
		t.Fatalf("snapshot counted %d decisions in %d batches, want 3 in 1", snap.Decisions, snap.Batches)
	}
}

// TestMicroBatchingCoalescesPipelinedAdmits is the perf-centerpiece
// contract: pipelined single Admit frames must coalesce into fewer
// AdmitBatch calls (mean batch > 1) while responses stay in request order.
func TestMicroBatchingCoalescesPipelinedAdmits(t *testing.T) {
	srv, addr := startServer(t, Config{})
	nc, rd := dial(t, addr)
	const n = 256
	var buf []byte
	for i := 0; i < n; i++ {
		buf = wire.AppendAdmit(buf, uint64(i+1), uint64(i), 1)
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	for i := 0; i < n; i++ {
		mustNext(t, rd, &f)
		if f.Op != wire.OpDecision || f.ReqID != uint64(i+1) {
			t.Fatalf("response %d: got %v req %d, want Decision req %d", i, f.Op, f.ReqID, i+1)
		}
	}
	snap := srv.Snapshot()
	if snap.Decisions != n {
		t.Fatalf("served %d decisions, want %d", snap.Decisions, n)
	}
	if snap.MeanBatch() <= 1 {
		t.Fatalf("micro-batching never engaged: %d decisions in %d batches (mean %.2f)",
			snap.Decisions, snap.Batches, snap.MeanBatch())
	}
}

func TestMaxConnsRefusal(t *testing.T) {
	srv, addr := startServer(t, Config{MaxConns: 1})
	nc1, rd1 := dial(t, addr)
	// A round trip guarantees conn1 is registered before we dial conn2.
	if _, err := nc1.Write(wire.AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd1, &f)

	_, rd2 := dial(t, addr)
	mustNext(t, rd2, &f)
	if f.Op != wire.OpRefusal || f.Refusal != wire.RefuseOverloaded {
		t.Fatalf("got %v/%v, want Refusal/overloaded", f.Op, f.Refusal)
	}
	if err := rd2.Next(&f); err == nil {
		t.Fatal("refused connection stayed open")
	}
	if got := srv.Snapshot().ConnsRefused; got != 1 {
		t.Fatalf("refused counter = %d, want 1", got)
	}
}

func TestFrameRateCapRefusesFloods(t *testing.T) {
	srv, addr := startServer(t, Config{FrameRate: 1})
	nc, rd := dial(t, addr)
	// Burst is one frame; the second immediate frame must trip the cap.
	buf := wire.AppendPing(wire.AppendPing(nil, 1), 2)
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)
	if f.Op != wire.OpPong {
		t.Fatalf("first frame got %v, want Pong", f.Op)
	}
	mustNext(t, rd, &f)
	if f.Op != wire.OpRefusal || f.Refusal != wire.RefuseRateLimited {
		t.Fatalf("got %v/%v, want Refusal/rate-limited", f.Op, f.Refusal)
	}
	if got := srv.Snapshot().ConnsRateLimited; got != 1 {
		t.Fatalf("rate-limited counter = %d, want 1", got)
	}
}

func TestSlowClientShed(t *testing.T) {
	// A 1-byte budget makes the very first enqueued response overflow the
	// backlog, standing in for a peer that never reads.
	srv, addr := startServer(t, Config{WriteBuffer: 1})
	nc, rd := dial(t, addr)
	if _, err := nc.Write(wire.AppendAdmit(nil, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)
	if f.Op != wire.OpDecision {
		t.Fatalf("in-flight decision lost to the shed: got %v", f.Op)
	}
	mustNext(t, rd, &f)
	if f.Op != wire.OpRefusal || f.Refusal != wire.RefuseSlowClient {
		t.Fatalf("got %v/%v, want Refusal/slow-client", f.Op, f.Refusal)
	}
	if got := srv.Snapshot().ConnsShed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

func TestProtocolErrorRefuses(t *testing.T) {
	srv, addr := startServer(t, Config{})
	nc, rd := dial(t, addr)
	if _, err := nc.Write([]byte{0, 0, 0, 2, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)
	if f.Op != wire.OpRefusal || f.Refusal != wire.RefuseProtocol {
		t.Fatalf("got %v/%v, want Refusal/protocol", f.Op, f.Refusal)
	}
	if got := srv.Snapshot().ProtocolErrors; got != 1 {
		t.Fatalf("protocol-error counter = %d, want 1", got)
	}
}

// TestGracefulDrainFlushesInFlightDecisions pins the drain contract: admits
// already written when Shutdown begins still get their decisions before the
// connection closes, and nothing is departed on the clients' behalf.
func TestGracefulDrainFlushesInFlightDecisions(t *testing.T) {
	g := newTestGateway(t, 1e9)
	srv, addr := startServer(t, Config{Gateway: g, DrainGrace: time.Second})
	nc, rd := dial(t, addr)
	// Prime the connection so the admits below are genuinely in flight on
	// an established, registered connection.
	if _, err := nc.Write(wire.AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)

	const n = 64
	var buf []byte
	for i := 0; i < n; i++ {
		buf = wire.AppendAdmit(buf, uint64(i+2), uint64(i), 1)
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		mustNext(t, rd, &f)
		if f.Op != wire.OpDecision || f.ReqID != uint64(i+2) {
			t.Fatalf("drain dropped decision %d: got %v req %d", i, f.Op, f.ReqID)
		}
	}
	if err := rd.Next(&f); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v after drain, want EOF", err)
	}
	// Drain departs nothing: the admitted flows are still active and will
	// only age out through their leases.
	if active := g.Snapshot().Active; active != n {
		t.Fatalf("drain departed flows: %d active, want %d", active, n)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

func TestSnapshotPrometheusRendering(t *testing.T) {
	srv, addr := startServer(t, Config{})
	nc, rd := dial(t, addr)
	if _, err := nc.Write(wire.AppendAdmit(nil, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	mustNext(t, rd, &f)
	var sb strings.Builder
	srv.Snapshot().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"mbac_server_conns_active 1",
		"mbac_server_conns_accepted_total 1",
		"mbac_server_decisions_total 1",
		"mbac_server_batch_size_bucket",
		"mbac_server_draining 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil gateway accepted")
	}
	if _, err := New(Config{Gateway: newTestGateway(t, 1), MaxConns: -1}); err == nil {
		t.Error("negative limit accepted")
	}
}
