// Package server turns a gateway.Gateway into a network service: a TCP
// server speaking the internal/wire framed protocol, one reader/writer
// goroutine pair per connection, built to keep the in-process admission
// cost (~110 ns, 0 allocs) visible through the socket instead of burying
// it under per-request overhead.
//
// # The served fast path
//
// Three mechanisms close the gap between the wire and the in-process
// batched hot path; together they hold BenchmarkServerAdmit to a few
// hundred ns and ~0 allocs per decision:
//
//   - Vectorized burst decode. The reader prefers wire.Reader.
//     NextAdmitBurst, which walks the whole pipelined run of Admit frames
//     sitting in the read buffer and lands (reqID, flow, rate) directly
//     in the connection's AdmitBatch scratch — no intermediate Frame, one
//     bounds check per frame. The burst decoder only consumes frames the
//     generic decoder would decode identically (the differential tests in
//     internal/wire pin this), so Config.DisableFastPath changes the
//     cost, never the decisions.
//
//   - Micro-batching. Pending admits — vector-decoded or accumulated one
//     at a time — are decided with a single Gateway.AdmitBatch call: one
//     clock pair and one bound load amortized across the burst. The batch
//     flushes right before the first read that could block, when a
//     non-Admit frame arrives (preserving per-flow request order), or at
//     Config.MaxBatch.
//
//   - Writer coalescing. Responses are encoded into a per-connection
//     arena (conn.out) owned by the reader goroutine, and the arena is
//     handed to the writer only when the reader is about to block, when
//     it exceeds a writev-sized threshold, or at teardown — so a 64-deep
//     pipelined round costs one backlog enqueue and typically one
//     write syscall instead of 128. Read deadlines are armed only before
//     reads that can actually block, never per frame.
//
// Ownership rules: the reader goroutine owns conn.pend (the admit
// scratch), conn.out (the response arena) and the wire.Reader; the writer
// goroutine owns the socket writes; connWriter.enqueue copies the arena
// under its lock, which is the only point where bytes change goroutines.
// Per-listener accept loops (Serve is variadic; see Listen) own nothing
// but the accept call and the shard counters they stamp on new conns.
//
// # Robustness edges
//
// Every edge is explicit, counted, and visible in the Snapshot:
//
//   - accept refusal: past Config.MaxConns the server writes one
//     connection-scoped Refusal (overloaded) and closes — the serving
//     layer's analogue of the gateway's ReasonCapacity refusal;
//   - read/write deadlines bound how long a dead peer can pin a
//     goroutine;
//   - slow-client shedding: a connection whose response backlog exceeds
//     Config.WriteBuffer is refused (slow-client) and closed instead of
//     growing without bound;
//   - frame-rate cap: a token bucket per connection refuses (rate-limited)
//     and closes connections that exceed Config.FrameRate frames/sec;
//   - graceful drain: Shutdown stops accepting, lets each connection
//     finish the frames already in flight (decisions are flushed, not
//     dropped), and Departs nothing — abandoned flows are reclaimed by
//     the gateway's flow leases, the crash-consistency story PR 4 built.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Backend is the admission surface the server fronts: the four
// concurrent-safe decision methods the wire protocol needs, exactly as
// gateway.Gateway implements them. A cluster router satisfies the same
// shape, so the pooled client talks to a fleet transparently — the wire
// protocol cannot tell one link from N.
type Backend interface {
	AdmitBatch(ids []uint64, rates []float64, dst []gateway.Decision) ([]gateway.Decision, error)
	DepartBatch(ids []uint64, dst []bool) []bool
	UpdateRate(flowID uint64, rate float64) error
	Touch(flowID uint64) error
}

var _ Backend = (*gateway.Gateway)(nil)

// Config parameterizes a Server.
type Config struct {
	// Gateway is the admission gateway the server fronts (required unless
	// Backend is set). The server only calls its concurrent-safe methods;
	// ticking it (Run or a virtual clock) stays the owner's job.
	Gateway *gateway.Gateway

	// Backend overrides Gateway as the admission surface — e.g. a cluster
	// router fronting N gateways. Nil defaults to Gateway; at least one of
	// the two is required. Ticking the backend stays the owner's job.
	Backend Backend

	// MaxConns caps concurrently served connections (default 1024). At
	// the cap, accepted connections get a Refusal (overloaded) frame and
	// are closed.
	MaxConns int

	// MaxBatch caps how many pipelined Admit frames coalesce into one
	// AdmitBatch call (default 512, clamped to wire.MaxBatch).
	MaxBatch int

	// ReadTimeout bounds the wait for the next frame on an idle
	// connection (default 60s). Clients keep connections alive with
	// Ping or lease Touch traffic.
	ReadTimeout time.Duration

	// WriteTimeout bounds one flush of the response backlog (default 10s).
	WriteTimeout time.Duration

	// WriteBuffer is the response-backlog budget per connection in bytes
	// (default 1 MiB). A connection that reads slower than it asks gets
	// shed (Refusal slow-client) when its backlog passes the budget.
	WriteBuffer int

	// FrameRate caps request frames per second per connection; 0 (the
	// default) disables the cap. The bucket's burst equals one second's
	// allowance. A vector-decoded burst is charged as a unit: if the
	// bucket cannot cover the whole burst the connection is refused
	// (rate-limited), with decisions for the already-decoded admits
	// still flushed before close.
	FrameRate int

	// DrainGrace is how long a draining connection may keep processing
	// frames that were already in flight when Shutdown began (default
	// 250ms). The overall drain is additionally bounded by the context
	// given to Shutdown.
	DrainGrace time.Duration

	// DisableFastPath forces the generic frame-at-a-time decode path,
	// bypassing the vectorized Admit burst decoder. Decisions are
	// identical either way — the knob exists so the differential
	// conformance tests can prove exactly that, and as an escape hatch.
	DisableFastPath bool
}

// Server serves the wire protocol over TCP (or any net.Listener) against
// one Gateway. Construct with New; Serve may be called once.
type Server struct {
	cfg Config

	mu       sync.Mutex
	lns      []net.Listener
	shards   []shardStats // one per listener, sized in Serve
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // live connection goroutine pairs

	// Serving-layer counters, merged into the observability surface next
	// to the gateway families (see Snapshot / WritePrometheus).
	accepted    metrics.Counter
	refused     metrics.Counter // over MaxConns at accept
	drainRef    metrics.Counter // refused because draining
	shed        metrics.Counter // slow-client write-backlog sheds
	rateLimited metrics.Counter // frame-rate cap closes
	protoErrs   metrics.Counter // malformed frames
	frames      metrics.Counter // request frames processed
	decisions   metrics.Counter // admission decisions served
	batches     metrics.Counter // AdmitBatch calls made
	activeConns atomic.Int64
	batchSizes  *metrics.Histogram // decisions per AdmitBatch call
	latency     *metrics.Histogram // served seconds per decision (batch mean)
}

// shardStats is the per-listener counter set: which accept loop a
// connection landed on, and how many bytes it moved. Sharding is only
// worth having if its balance is observable.
type shardStats struct {
	conns        metrics.Counter
	bytesRead    metrics.Counter
	bytesWritten metrics.Counter
}

// servedLatencyBounds spans 250ns to ~65ms (doubling) — wide enough for a
// loopback decision (~µs) and a cross-rack one (~ms).
func servedLatencyBounds() []float64 { return metrics.ExpBounds(250e-9, 2, 18) }

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		if cfg.Gateway == nil {
			return nil, fmt.Errorf("server: a Gateway or Backend is required")
		}
		cfg.Backend = cfg.Gateway
	}
	if cfg.MaxConns < 0 || cfg.MaxBatch < 0 || cfg.WriteBuffer < 0 || cfg.FrameRate < 0 {
		return nil, fmt.Errorf("server: negative limits are invalid")
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 512
	}
	if cfg.MaxBatch > wire.MaxBatch {
		cfg.MaxBatch = wire.MaxBatch
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.WriteBuffer == 0 {
		cfg.WriteBuffer = 1 << 20
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	return &Server{
		cfg:        cfg,
		conns:      make(map[*conn]struct{}),
		batchSizes: metrics.NewHistogram(metrics.ExpBounds(1, 2, 11)),
		latency:    metrics.NewHistogram(servedLatencyBounds()),
	}, nil
}

// Serve accepts connections on the given listeners — one accept loop per
// listener, so the accept path scales across cores with a SO_REUSEPORT
// listener set (see Listen) — until the listeners fail or Shutdown closes
// them. Passing the same listener several times is the portable sharding
// fallback: Accept is safe for concurrent use, so N loops round-robin the
// kernel's accept queue. Serve returns nil after a graceful shutdown.
func (s *Server) Serve(lns ...net.Listener) error {
	if len(lns) == 0 {
		return fmt.Errorf("server: Serve needs at least one listener")
	}
	s.mu.Lock()
	if s.lns != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: Serve called twice")
	}
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.lns = append([]net.Listener(nil), lns...)
	s.shards = make([]shardStats, len(lns))
	s.mu.Unlock()

	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for i, ln := range lns {
		wg.Add(1)
		go func(shard int, ln net.Listener) {
			defer wg.Done()
			err := s.acceptLoop(ln, shard)
			if err == nil {
				return
			}
			errMu.Lock()
			if first == nil {
				first = err
				// Unblock the sibling accept loops so Serve returns.
				for _, l := range lns {
					l.Close()
				}
			}
			errMu.Unlock()
		}(i, ln)
	}
	wg.Wait()
	if s.Draining() {
		return nil
	}
	return first
}

// acceptLoop accepts on one listener, stamping its shard on every conn.
func (s *Server) acceptLoop(ln net.Listener, shard int) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.Draining() {
				return nil
			}
			return err
		}
		s.accept(nc, shard)
	}
}

// accept admits or refuses one freshly accepted connection.
func (s *Server) accept(nc net.Conn, shard int) {
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.drainRef.Inc()
		s.refuse(nc, wire.RefuseDraining)
		return
	case len(s.conns) >= s.cfg.MaxConns:
		s.mu.Unlock()
		s.refused.Inc()
		s.refuse(nc, wire.RefuseOverloaded)
		return
	}
	c := newConn(s, nc, &s.shards[shard])
	s.conns[c] = struct{}{}
	s.wg.Add(1) // the reader's share; the writer adds its own in serve
	s.mu.Unlock()
	s.accepted.Inc()
	s.shards[shard].conns.Inc()
	s.activeConns.Add(1)
	go c.serve()
}

// refuse writes a best-effort connection-scoped refusal and closes nc.
func (s *Server) refuse(nc net.Conn, r wire.Refusal) {
	nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	nc.Write(wire.AppendRefusal(nil, 0, r))
	nc.Close()
}

// remove unregisters a finished connection.
func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.activeConns.Add(-1)
	s.wg.Done()
}

// Shutdown drains the server gracefully: stop accepting, give every live
// connection DrainGrace to finish the frames already in flight (their
// decisions are flushed before close), then wait for the connections to
// finish or ctx to expire, whichever is first. Remaining connections are
// force-closed on expiry. No flow is departed on behalf of disconnected
// clients — the gateway's leases reclaim abandoned flows, so a drain can
// never double-free a slot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: Shutdown called twice")
	}
	s.draining = true
	lns := s.lns
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close() // duplicate closes (shared-listener fallback) are harmless
	}
	deadline := time.Now().Add(s.cfg.DrainGrace)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for _, c := range conns {
		c.beginDrain(deadline)
	}
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ShardSnapshot is the per-listener slice of the serving snapshot.
type ShardSnapshot struct {
	Conns        int64 `json:"conns"`         // connections accepted on this shard
	BytesRead    int64 `json:"bytes_read"`    // request bytes read on this shard
	BytesWritten int64 `json:"bytes_written"` // response bytes written on this shard
}

// Snapshot is the serving-layer observability view, the sibling of
// gateway.Snapshot one layer up the stack. JSON-encodable; convertible to
// Prometheus text via WritePrometheus.
type Snapshot struct {
	ConnsActive      int64                     `json:"conns_active"`       // connections currently served
	ConnsAccepted    int64                     `json:"conns_accepted"`     // cumulative accepted connections
	ConnsRefused     int64                     `json:"conns_refused"`      // refused at accept: over MaxConns
	ConnsDrainRef    int64                     `json:"conns_drain_ref"`    // refused at accept: draining
	ConnsShed        int64                     `json:"conns_shed"`         // shed for a slow read side
	ConnsRateLimited int64                     `json:"conns_rate_limited"` // closed for exceeding the frame-rate cap
	ProtocolErrors   int64                     `json:"protocol_errors"`    // malformed frames
	Frames           int64                     `json:"frames"`             // request frames processed
	Decisions        int64                     `json:"decisions"`          // admission decisions served
	Batches          int64                     `json:"batches"`            // AdmitBatch calls made
	Draining         bool                      `json:"draining"`           // Shutdown in progress
	BatchSizes       metrics.HistogramSnapshot `json:"batch_sizes"`        // decisions per AdmitBatch call
	ServedLatency    metrics.HistogramSnapshot `json:"served_latency"`     // seconds per served decision (batch mean)
	ServedP50        float64                   `json:"served_p50"`         // median served seconds per decision
	ServedP99        float64                   `json:"served_p99"`         // 99th-percentile served seconds per decision
	Shards           []ShardSnapshot           `json:"shards"`             // per-listener accept/byte counters
}

// MeanBatch returns the average number of decisions coalesced per
// AdmitBatch call (0 before any batch) — the e2e test and benchmark
// assert that pipelined load actually engages the micro-batcher (mean > 1).
func (s Snapshot) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Decisions) / float64(s.Batches)
}

// Snapshot assembles the serving-layer snapshot (weakly consistent, like
// every metrics read in this codebase).
func (s *Server) Snapshot() Snapshot {
	lat := s.latency.Snapshot()
	snap := Snapshot{
		ConnsActive:      s.activeConns.Load(),
		ConnsAccepted:    s.accepted.Load(),
		ConnsRefused:     s.refused.Load(),
		ConnsDrainRef:    s.drainRef.Load(),
		ConnsShed:        s.shed.Load(),
		ConnsRateLimited: s.rateLimited.Load(),
		ProtocolErrors:   s.protoErrs.Load(),
		Frames:           s.frames.Load(),
		Decisions:        s.decisions.Load(),
		Batches:          s.batches.Load(),
		Draining:         s.Draining(),
		BatchSizes:       s.batchSizes.Snapshot(),
		ServedLatency:    lat,
		ServedP50:        lat.Quantile(0.50),
		ServedP99:        lat.Quantile(0.99),
	}
	s.mu.Lock()
	shards := s.shards
	s.mu.Unlock()
	snap.Shards = make([]ShardSnapshot, len(shards))
	for i := range shards {
		snap.Shards[i] = ShardSnapshot{
			Conns:        shards[i].conns.Load(),
			BytesRead:    shards[i].bytesRead.Load(),
			BytesWritten: shards[i].bytesWritten.Load(),
		}
	}
	return snap
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the mbac_server_* namespace, next to the gateway's
// mbac_gateway_* families.
func (s Snapshot) WritePrometheus(w io.Writer) {
	metrics.WriteGauge(w, "mbac_server_conns_active", "connections currently served", float64(s.ConnsActive))
	metrics.WriteCounter(w, "mbac_server_conns_accepted_total", "cumulative accepted connections", s.ConnsAccepted)
	metrics.WriteCounter(w, "mbac_server_conns_refused_total", "connections refused at accept (over max-conns)", s.ConnsRefused)
	metrics.WriteCounter(w, "mbac_server_conns_drain_refused_total", "connections refused while draining", s.ConnsDrainRef)
	metrics.WriteCounter(w, "mbac_server_conns_shed_total", "connections shed for a slow read side", s.ConnsShed)
	metrics.WriteCounter(w, "mbac_server_conns_rate_limited_total", "connections closed for exceeding the frame-rate cap", s.ConnsRateLimited)
	metrics.WriteCounter(w, "mbac_server_protocol_errors_total", "malformed request frames", s.ProtocolErrors)
	metrics.WriteCounter(w, "mbac_server_frames_total", "request frames processed", s.Frames)
	metrics.WriteCounter(w, "mbac_server_decisions_total", "admission decisions served", s.Decisions)
	metrics.WriteCounter(w, "mbac_server_batches_total", "AdmitBatch calls made", s.Batches)
	draining := 0.0
	if s.Draining {
		draining = 1
	}
	metrics.WriteGauge(w, "mbac_server_draining", "1 while a graceful drain is in progress", draining)
	metrics.WriteHistogram(w, "mbac_server_batch_size", "admission decisions coalesced per AdmitBatch call", s.BatchSizes)
	metrics.WriteHistogram(w, "mbac_server_latency_seconds", "served seconds per admission decision (batch mean)", s.ServedLatency)
	metrics.WriteGauge(w, "mbac_server_latency_p50_seconds", "median served seconds per admission decision", s.ServedP50)
	metrics.WriteGauge(w, "mbac_server_latency_p99_seconds", "99th-percentile served seconds per admission decision", s.ServedP99)
	if len(s.Shards) > 0 {
		fmt.Fprint(w, "# HELP mbac_server_shard_conns_total connections accepted per listener shard\n# TYPE mbac_server_shard_conns_total counter\n")
		for i, sh := range s.Shards {
			fmt.Fprintf(w, "mbac_server_shard_conns_total{shard=\"%d\"} %d\n", i, sh.Conns)
		}
		fmt.Fprint(w, "# HELP mbac_server_shard_bytes_read_total request bytes read per listener shard\n# TYPE mbac_server_shard_bytes_read_total counter\n")
		for i, sh := range s.Shards {
			fmt.Fprintf(w, "mbac_server_shard_bytes_read_total{shard=\"%d\"} %d\n", i, sh.BytesRead)
		}
		fmt.Fprint(w, "# HELP mbac_server_shard_bytes_written_total response bytes written per listener shard\n# TYPE mbac_server_shard_bytes_written_total counter\n")
		for i, sh := range s.Shards {
			fmt.Fprintf(w, "mbac_server_shard_bytes_written_total{shard=\"%d\"} %d\n", i, sh.BytesWritten)
		}
	}
}

// conn is one served connection: a reader goroutine (serve) that decodes,
// batches and decides, and a writer goroutine that flushes the encoded
// response backlog. The two meet at wr.
type conn struct {
	srv   *Server
	nc    net.Conn
	rd    *wire.Reader
	wr    connWriter
	shard *shardStats

	// drainDeadline, unix-nanos, is set by beginDrain: past it the reader
	// stops waiting for new frames (0 = not draining). Written by the
	// Shutdown goroutine, read by the reader when arming deadlines.
	drainDeadline atomic.Int64

	// Token bucket for the frame-rate cap; reader-goroutine-local.
	tokens     float64
	lastRefill time.Time

	// Reader-goroutine-local scratch, reused across frames so the steady
	// state serves without allocating. pend and dep are the admit and
	// depart batches under accumulation — the burst decoders append to
	// them directly; out is the response arena the writer coalescing
	// flushes. At most one of pend/dep is non-empty at any time: switching
	// request kind flushes the other first, which is what keeps arena
	// append order equal to request-arrival order.
	pend      wire.AdmitBurst
	dep       wire.DepartBurst
	depOK     []bool
	decisions []gateway.Decision
	wireDecs  []wire.Decision
	out       []byte
}

// coalesceBytes is the response-arena size that forces a flush mid-burst:
// roughly one writev-worth of frames, so a long pipelined run neither
// flushes per response nor builds an unbounded arena.
const coalesceBytes = 64 << 10

// countingReader counts bytes pulled off the socket into the per-shard
// counter. It sits under the wire.Reader's bufio buffer, so the count
// costs one atomic add per fill, not per frame.
type countingReader struct {
	nc net.Conn
	n  *metrics.Counter
}

func (r countingReader) Read(p []byte) (int, error) {
	n, err := r.nc.Read(p)
	if n > 0 {
		r.n.Add(int64(n))
	}
	return n, err
}

// newConn wires up a connection and its writer state.
func newConn(s *Server, nc net.Conn, shard *shardStats) *conn {
	c := &conn{srv: s, nc: nc, shard: shard}
	c.rd = wire.NewReader(countingReader{nc: nc, n: &shard.bytesRead})
	c.wr.init(s.cfg.WriteBuffer)
	c.tokens = float64(s.cfg.FrameRate)
	c.lastRefill = time.Now()
	return c
}

// beginDrain tells the connection to stop waiting for new frames after
// deadline. Frames already buffered (or arriving before the deadline) are
// still processed and their responses flushed — the "no decision lost"
// half of the drain contract.
func (c *conn) beginDrain(deadline time.Time) {
	c.drainDeadline.Store(deadline.UnixNano())
	// Re-arm the read deadline in case the reader is already blocked. The
	// reader re-applies the minimum of idle and drain deadlines before its
	// next blocking read, so a lost race here only delays the cut to the
	// idle timeout, and Shutdown's context still bounds the total drain.
	c.nc.SetReadDeadline(deadline)
}

// serve runs the reader loop; it owns connection teardown.
func (c *conn) serve() {
	c.srv.wg.Add(1) // the writer's share (the reader's was added at accept)
	go c.writeLoop()
	refusal := c.readLoop()
	// Flush any batched admits/departs and the coalesced arena so
	// in-flight responses survive teardown (EOF, drain deadline and
	// protocol errors all land here).
	c.flushPending()
	c.flushOut()
	if refusal != 0 {
		c.out = wire.AppendRefusal(c.out[:0], 0, refusal)
		c.wr.enqueue(c.out)
		c.out = c.out[:0]
	}
	c.wr.close() // the writer drains the backlog, then exits
	c.wr.wait()  // don't close the socket under an in-progress flush
	c.nc.Close()
	c.srv.remove(c)
}

// readLoop processes frames until the connection ends. It returns a
// non-zero refusal when the connection is being closed for cause, so the
// peer learns why before the socket closes.
//
// Structure: an inner loop drains everything already buffered — bursts of
// Admit frames through the vectorized decoder, everything else through the
// generic one — without touching deadlines or the socket. Only when the
// buffer runs dry does the loop flush pending admits and the response
// arena, arm the idle/drain deadline, and issue the one read that can
// block.
func (c *conn) readLoop() wire.Refusal {
	var f wire.Frame
	fast := !c.srv.cfg.DisableFastPath
	maxBatch := c.srv.cfg.MaxBatch
	// Frame counting is batched: accumulated locally and published once
	// per drain cycle (and at return), not once per frame.
	var nframes int64
	defer func() { c.srv.frames.Add(nframes) }()
	for {
		for {
			if fast {
				if n := c.rd.NextAdmitBurst(&c.pend, maxBatch-c.pend.Len()); n > 0 {
					nframes += int64(n)
					if !c.allowFrames(n) {
						c.srv.rateLimited.Inc()
						return wire.RefuseRateLimited
					}
					// Older departs ack before these admits decide.
					if c.dep.Len() > 0 {
						if c.flushDeparts() {
							c.srv.shed.Inc()
							return wire.RefuseSlowClient
						}
					}
					if c.pend.Len() >= maxBatch {
						if c.flushAdmits() {
							c.srv.shed.Inc()
							return wire.RefuseSlowClient
						}
					}
					continue
				}
				if n := c.rd.NextDepartBurst(&c.dep, maxBatch-c.dep.Len()); n > 0 {
					nframes += int64(n)
					if !c.allowFrames(n) {
						c.srv.rateLimited.Inc()
						return wire.RefuseRateLimited
					}
					// Older admits decide before these departs ack.
					if c.pend.Len() > 0 {
						if c.flushAdmits() {
							c.srv.shed.Inc()
							return wire.RefuseSlowClient
						}
					}
					if c.dep.Len() >= maxBatch {
						if c.flushDeparts() {
							c.srv.shed.Inc()
							return wire.RefuseSlowClient
						}
					}
					continue
				}
			}
			ok, err := c.rd.NextBuffered(&f)
			if !ok {
				break
			}
			if err != nil {
				c.srv.protoErrs.Inc()
				return wire.RefuseProtocol // a buffered frame can only fail by being malformed
			}
			nframes++
			if !c.allowFrames(1) {
				c.srv.rateLimited.Inc()
				return wire.RefuseRateLimited
			}
			if shed := c.handle(&f); shed {
				c.srv.shed.Inc()
				return wire.RefuseSlowClient
			}
		}
		// The buffer is dry: decide what's pending and hand the writer the
		// coalesced responses before risking a blocking read.
		if c.flushPending() || c.flushOut() {
			c.srv.shed.Inc()
			return wire.RefuseSlowClient
		}
		c.srv.frames.Add(nframes)
		nframes = 0
		rd := time.Now().Add(c.srv.cfg.ReadTimeout)
		if dd := c.drainDeadline.Load(); dd != 0 {
			if d := time.Unix(0, dd); d.Before(rd) {
				rd = d
			}
		}
		c.nc.SetReadDeadline(rd)
		if err := c.rd.Next(&f); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, net.ErrClosed) || isTimeout(err) {
				return 0 // clean close, drain cut, or idle cut
			}
			c.srv.protoErrs.Inc()
			return wire.RefuseProtocol
		}
		nframes++
		if !c.allowFrames(1) {
			c.srv.rateLimited.Inc()
			return wire.RefuseRateLimited
		}
		if shed := c.handle(&f); shed {
			c.srv.shed.Inc()
			return wire.RefuseSlowClient
		}
	}
}

// allowFrames charges n frames against the rate-cap token bucket.
func (c *conn) allowFrames(n int) bool {
	limit := c.srv.cfg.FrameRate
	if limit == 0 {
		return true
	}
	now := time.Now()
	c.tokens += now.Sub(c.lastRefill).Seconds() * float64(limit)
	if burst := float64(limit); c.tokens > burst {
		c.tokens = burst
	}
	c.lastRefill = now
	if c.tokens < float64(n) {
		return false
	}
	c.tokens -= float64(n)
	return true
}

// handle processes one decoded frame, appending responses to the arena.
// It reports whether the connection must be shed for a full backlog.
func (c *conn) handle(f *wire.Frame) (shed bool) {
	g := c.srv.cfg.Backend
	switch f.Op {
	case wire.OpAdmit:
		// The generic half of the micro-batch (fast path disabled, or a
		// lone Admit at the buffer boundary): accumulate; the loop flushes
		// before blocking, and the cap flushes here.
		if c.flushDeparts() {
			return true
		}
		c.pend.ReqIDs = append(c.pend.ReqIDs, f.ReqID)
		c.pend.Flows = append(c.pend.Flows, f.Flow)
		c.pend.Rates = append(c.pend.Rates, f.Rate)
		if c.pend.Len() >= c.srv.cfg.MaxBatch {
			return c.flushAdmits()
		}
		return false
	case wire.OpAdmitBatch:
		// An explicit client-side batch: decide it as one unit, after any
		// pending singles (order preserved).
		if c.flushPending() {
			return true
		}
		t0 := time.Now()
		c.decisions = c.decisions[:0]
		var err error
		c.decisions, err = g.AdmitBatch(f.Flows, f.Rates, c.decisions)
		if err != nil {
			// Lengths are validated by the wire decoder; an error here is
			// a server bug, but shed the connection rather than panic.
			return true
		}
		n := len(c.decisions)
		c.srv.decisions.Add(int64(n))
		c.srv.batches.Inc()
		c.srv.batchSizes.Observe(float64(n))
		c.wireDecs = c.wireDecs[:0]
		for _, d := range c.decisions {
			c.wireDecs = append(c.wireDecs, wire.Decision{
				Reason: uint8(d.Reason), Admissible: d.Admissible, Active: d.Active,
			})
		}
		out, err := wire.AppendDecisionBatch(c.out, f.ReqID, c.wireDecs)
		if err != nil {
			return true // unreachable: the decoder bounded the batch size
		}
		c.out = out
		c.srv.latency.ObserveN(time.Since(t0).Seconds()/float64(n), n)
		return c.maybeFlushOut()
	case wire.OpUpdateRate:
		if c.flushPending() {
			return true
		}
		st := wire.StatusOK
		if !(f.Rate >= 0) || f.Rate > maxFinite {
			st = wire.StatusInvalidRate
		} else if err := g.UpdateRate(f.Flow, f.Rate); err != nil {
			st = wire.StatusNotActive
		}
		c.out = wire.AppendAck(c.out, f.ReqID, st)
		return c.maybeFlushOut()
	case wire.OpTouch:
		if c.flushPending() {
			return true
		}
		st := wire.StatusOK
		if err := g.Touch(f.Flow); err != nil {
			st = wire.StatusNotActive
		}
		c.out = wire.AppendAck(c.out, f.ReqID, st)
		return c.maybeFlushOut()
	case wire.OpDepart:
		// The generic half of the depart micro-batch, mirroring OpAdmit:
		// older admits decide first, then the depart accumulates.
		if c.flushAdmits() {
			return true
		}
		c.dep.ReqIDs = append(c.dep.ReqIDs, f.ReqID)
		c.dep.Flows = append(c.dep.Flows, f.Flow)
		if c.dep.Len() >= c.srv.cfg.MaxBatch {
			return c.flushDeparts()
		}
		return false
	case wire.OpPing:
		if c.flushPending() {
			return true
		}
		c.out = wire.AppendPong(c.out, f.ReqID)
		return c.maybeFlushOut()
	default:
		// A response op from a client is a protocol violation.
		c.srv.protoErrs.Inc()
		return true
	}
}

// maxFinite guards against +Inf reaching UpdateRate (NaN and negatives
// are caught by the f.Rate >= 0 comparison).
const maxFinite = 1.7976931348623157e308

// flushAdmits decides the pending Admit frames with one AdmitBatch call
// and appends one Decision frame per request to the arena. The served
// latency histogram gets the batch's per-decision mean — decode-complete
// to response-encoded — attributed to every decision via ObserveN.
// Reports shed like handle.
func (c *conn) flushAdmits() bool {
	n := c.pend.Len()
	if n == 0 {
		return false
	}
	g := c.srv.cfg.Backend
	t0 := time.Now()
	c.decisions = c.decisions[:0]
	var err error
	c.decisions, err = g.AdmitBatch(c.pend.Flows, c.pend.Rates, c.decisions)
	if err != nil || len(c.decisions) != n {
		c.pend.Reset()
		return true // server bug; shed rather than desync correlation
	}
	c.srv.decisions.Add(int64(n))
	c.srv.batches.Inc()
	c.srv.batchSizes.Observe(float64(n))
	for i, d := range c.decisions {
		c.out = wire.AppendDecision(c.out, c.pend.ReqIDs[i], wire.Decision{
			Reason:     uint8(d.Reason),
			Admissible: d.Admissible,
			Active:     d.Active,
		})
	}
	c.pend.Reset()
	c.srv.latency.ObserveN(time.Since(t0).Seconds()/float64(n), n)
	return c.maybeFlushOut()
}

// flushDeparts is flushAdmits for the pending Depart frames: one
// DepartBatch call, one Ack frame per request appended to the arena.
func (c *conn) flushDeparts() bool {
	n := c.dep.Len()
	if n == 0 {
		return false
	}
	c.depOK = c.srv.cfg.Backend.DepartBatch(c.dep.Flows, c.depOK[:0])
	for i, ok := range c.depOK {
		st := wire.StatusOK
		if !ok {
			st = wire.StatusNotActive
		}
		c.out = wire.AppendAck(c.out, c.dep.ReqIDs[i], st)
	}
	c.dep.Reset()
	return c.maybeFlushOut()
}

// flushPending flushes both micro-batches. At most one is ever non-empty
// (handle and readLoop flush the other kind before switching), so the call
// order here never reorders responses.
func (c *conn) flushPending() bool {
	if c.flushAdmits() {
		return true
	}
	return c.flushDeparts()
}

// maybeFlushOut flushes the arena once it reaches the coalescing
// threshold; below it, responses keep accumulating until the reader is
// about to block.
func (c *conn) maybeFlushOut() bool {
	if len(c.out) < coalesceBytes {
		return false
	}
	return c.flushOut()
}

// flushOut hands the coalesced response arena to the writer goroutine in
// one enqueue and reports whether the backlog is over the shed budget.
func (c *conn) flushOut() bool {
	if len(c.out) == 0 {
		return false
	}
	shed := c.wr.enqueue(c.out)
	c.out = c.out[:0]
	return shed
}

// writeLoop flushes the response backlog until the connection ends.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.wr.exit()
	for {
		buf, closed := c.wr.take()
		if len(buf) > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			n, err := c.nc.Write(buf)
			if n > 0 {
				c.shard.bytesWritten.Add(int64(n))
			}
			if err != nil {
				// Kick the reader off its blocking read; teardown follows.
				c.nc.Close()
				return
			}
		}
		if closed {
			return
		}
	}
}

// isTimeout reports whether err is a deadline error.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// connWriter is the double-buffered response backlog between the reader
// (producer) and the writer goroutine (consumer): the reader copies
// encoded frames into pending under mu; the writer swaps pending for the
// spare and flushes it, so the reader never blocks on the socket and the
// backlog length is the shed signal. Copying under the lock (instead of
// handing the reader's arena over) is what keeps the two goroutines from
// ever sharing bytes.
type connWriter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte
	spare   []byte
	closed  bool
	done    chan struct{} // closed when the writer goroutine exits
	budget  int           // shed threshold, from Config.WriteBuffer
}

func (w *connWriter) init(budget int) {
	w.cond = sync.NewCond(&w.mu)
	w.done = make(chan struct{})
	w.budget = budget
}

// enqueue copies buf into the backlog, wakes the writer, and reports
// whether the backlog now exceeds the shed budget. buf remains owned by
// the caller.
func (w *connWriter) enqueue(buf []byte) (shed bool) {
	w.mu.Lock()
	w.pending = append(w.pending, buf...)
	over := w.budget > 0 && len(w.pending) > w.budget
	w.mu.Unlock()
	w.cond.Signal()
	return over
}

// take blocks until there is backlog to flush or the writer is closed,
// swapping the backlog out. closed is true when no more data will come.
func (w *connWriter) take() (buf []byte, closed bool) {
	w.mu.Lock()
	for len(w.pending) == 0 && !w.closed {
		w.cond.Wait()
	}
	buf = w.pending
	w.pending = w.spare[:0]
	w.spare = buf
	closed = w.closed && len(buf) == 0
	w.mu.Unlock()
	return buf, closed
}

// close tells the writer to finish after draining the backlog.
func (w *connWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Signal()
}

// exit marks the writer goroutine finished; called from writeLoop only.
func (w *connWriter) exit() {
	w.mu.Lock()
	w.closed = true // a failed writer also stops accepting work
	w.mu.Unlock()
	close(w.done)
}

// wait blocks until the writer goroutine has exited.
func (w *connWriter) wait() {
	<-w.done
}
