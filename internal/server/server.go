// Package server turns a gateway.Gateway into a network service: a TCP
// server speaking the internal/wire framed protocol, one reader/writer
// goroutine pair per connection, built to keep the in-process admission
// cost (~110 ns, 0 allocs) visible through the socket instead of burying
// it under per-request overhead.
//
// # Per-connection micro-batching
//
// The perf centerpiece. A pipelining client writes many Admit frames
// back-to-back; the reader accumulates consecutive Admit frames while
// more are already buffered (wire.Reader.FrameBuffered) and decides the
// whole run with a single Gateway.AdmitBatch call — one clock pair and
// one bound load amortized across the burst, exactly the economics the
// batch API was built for. The batch flushes right before the first read
// that could block, when a non-Admit frame arrives (preserving per-flow
// request order), or at Config.MaxBatch. Responses are appended to the
// connection's write backlog in request order and flushed by the writer
// goroutine, so a pipelined client sees decisions in the order it asked.
//
// # Robustness edges
//
// Every edge is explicit, counted, and visible in the Snapshot:
//
//   - accept refusal: past Config.MaxConns the server writes one
//     connection-scoped Refusal (overloaded) and closes — the serving
//     layer's analogue of the gateway's ReasonCapacity refusal;
//   - read/write deadlines bound how long a dead peer can pin a
//     goroutine;
//   - slow-client shedding: a connection whose response backlog exceeds
//     Config.WriteBuffer is refused (slow-client) and closed instead of
//     growing without bound;
//   - frame-rate cap: a token bucket per connection refuses (rate-limited)
//     and closes connections that exceed Config.FrameRate frames/sec;
//   - graceful drain: Shutdown stops accepting, lets each connection
//     finish the frames already in flight (decisions are flushed, not
//     dropped), and Departs nothing — abandoned flows are reclaimed by
//     the gateway's flow leases, the crash-consistency story PR 4 built.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Gateway is the admission gateway the server fronts (required). The
	// server only calls its concurrent-safe methods; ticking it (Run or
	// a virtual clock) stays the owner's job.
	Gateway *gateway.Gateway

	// MaxConns caps concurrently served connections (default 1024). At
	// the cap, accepted connections get a Refusal (overloaded) frame and
	// are closed.
	MaxConns int

	// MaxBatch caps how many pipelined Admit frames coalesce into one
	// AdmitBatch call (default 512, clamped to wire.MaxBatch).
	MaxBatch int

	// ReadTimeout bounds the wait for the next frame on an idle
	// connection (default 60s). Clients keep connections alive with
	// Ping or lease Touch traffic.
	ReadTimeout time.Duration

	// WriteTimeout bounds one flush of the response backlog (default 10s).
	WriteTimeout time.Duration

	// WriteBuffer is the response-backlog budget per connection in bytes
	// (default 1 MiB). A connection that reads slower than it asks gets
	// shed (Refusal slow-client) when its backlog passes the budget.
	WriteBuffer int

	// FrameRate caps request frames per second per connection; 0 (the
	// default) disables the cap. The bucket's burst equals one second's
	// allowance.
	FrameRate int

	// DrainGrace is how long a draining connection may keep processing
	// frames that were already in flight when Shutdown began (default
	// 250ms). The overall drain is additionally bounded by the context
	// given to Shutdown.
	DrainGrace time.Duration
}

// Server serves the wire protocol over TCP (or any net.Listener) against
// one Gateway. Construct with New; Serve may be called once.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg sync.WaitGroup // live connection goroutine pairs

	// Serving-layer counters, merged into the observability surface next
	// to the gateway families (see Snapshot / WritePrometheus).
	accepted    metrics.Counter
	refused     metrics.Counter // over MaxConns at accept
	drainRef    metrics.Counter // refused because draining
	shed        metrics.Counter // slow-client write-backlog sheds
	rateLimited metrics.Counter // frame-rate cap closes
	protoErrs   metrics.Counter // malformed frames
	frames      metrics.Counter // request frames processed
	decisions   metrics.Counter // admission decisions served
	batches     metrics.Counter // AdmitBatch calls made
	activeConns atomic.Int64
	batchSizes  *metrics.Histogram // decisions per AdmitBatch call
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Gateway == nil {
		return nil, fmt.Errorf("server: Gateway is required")
	}
	if cfg.MaxConns < 0 || cfg.MaxBatch < 0 || cfg.WriteBuffer < 0 || cfg.FrameRate < 0 {
		return nil, fmt.Errorf("server: negative limits are invalid")
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 512
	}
	if cfg.MaxBatch > wire.MaxBatch {
		cfg.MaxBatch = wire.MaxBatch
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.WriteBuffer == 0 {
		cfg.WriteBuffer = 1 << 20
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	return &Server{
		cfg:        cfg,
		conns:      make(map[*conn]struct{}),
		batchSizes: metrics.NewHistogram(metrics.ExpBounds(1, 2, 11)),
	}, nil
}

// Serve accepts connections on ln until the listener fails or Shutdown
// closes it. It returns nil after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: Serve called twice")
	}
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.accept(nc)
	}
}

// accept admits or refuses one freshly accepted connection.
func (s *Server) accept(nc net.Conn) {
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.drainRef.Inc()
		s.refuse(nc, wire.RefuseDraining)
		return
	case len(s.conns) >= s.cfg.MaxConns:
		s.mu.Unlock()
		s.refused.Inc()
		s.refuse(nc, wire.RefuseOverloaded)
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.wg.Add(1) // the reader's share; the writer adds its own in serve
	s.mu.Unlock()
	s.accepted.Inc()
	s.activeConns.Add(1)
	go c.serve()
}

// refuse writes a best-effort connection-scoped refusal and closes nc.
func (s *Server) refuse(nc net.Conn, r wire.Refusal) {
	nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	nc.Write(wire.AppendRefusal(nil, 0, r))
	nc.Close()
}

// remove unregisters a finished connection.
func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.activeConns.Add(-1)
	s.wg.Done()
}

// Shutdown drains the server gracefully: stop accepting, give every live
// connection DrainGrace to finish the frames already in flight (their
// decisions are flushed before close), then wait for the connections to
// finish or ctx to expire, whichever is first. Remaining connections are
// force-closed on expiry. No flow is departed on behalf of disconnected
// clients — the gateway's leases reclaim abandoned flows, so a drain can
// never double-free a slot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("server: Shutdown called twice")
	}
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	deadline := time.Now().Add(s.cfg.DrainGrace)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for _, c := range conns {
		c.beginDrain(deadline)
	}
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-finished
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Snapshot is the serving-layer observability view, the sibling of
// gateway.Snapshot one layer up the stack. JSON-encodable; convertible to
// Prometheus text via WritePrometheus.
type Snapshot struct {
	ConnsActive      int64                     `json:"conns_active"`       // connections currently served
	ConnsAccepted    int64                     `json:"conns_accepted"`     // cumulative accepted connections
	ConnsRefused     int64                     `json:"conns_refused"`      // refused at accept: over MaxConns
	ConnsDrainRef    int64                     `json:"conns_drain_ref"`    // refused at accept: draining
	ConnsShed        int64                     `json:"conns_shed"`         // shed for a slow read side
	ConnsRateLimited int64                     `json:"conns_rate_limited"` // closed for exceeding the frame-rate cap
	ProtocolErrors   int64                     `json:"protocol_errors"`    // malformed frames
	Frames           int64                     `json:"frames"`             // request frames processed
	Decisions        int64                     `json:"decisions"`          // admission decisions served
	Batches          int64                     `json:"batches"`            // AdmitBatch calls made
	Draining         bool                      `json:"draining"`           // Shutdown in progress
	BatchSizes       metrics.HistogramSnapshot `json:"batch_sizes"`        // decisions per AdmitBatch call
}

// MeanBatch returns the average number of decisions coalesced per
// AdmitBatch call (0 before any batch) — the e2e test and benchmark
// assert that pipelined load actually engages the micro-batcher (mean > 1).
func (s Snapshot) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Decisions) / float64(s.Batches)
}

// Snapshot assembles the serving-layer snapshot (weakly consistent, like
// every metrics read in this codebase).
func (s *Server) Snapshot() Snapshot {
	return Snapshot{
		ConnsActive:      s.activeConns.Load(),
		ConnsAccepted:    s.accepted.Load(),
		ConnsRefused:     s.refused.Load(),
		ConnsDrainRef:    s.drainRef.Load(),
		ConnsShed:        s.shed.Load(),
		ConnsRateLimited: s.rateLimited.Load(),
		ProtocolErrors:   s.protoErrs.Load(),
		Frames:           s.frames.Load(),
		Decisions:        s.decisions.Load(),
		Batches:          s.batches.Load(),
		Draining:         s.Draining(),
		BatchSizes:       s.batchSizes.Snapshot(),
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the mbac_server_* namespace, next to the gateway's
// mbac_gateway_* families.
func (s Snapshot) WritePrometheus(w io.Writer) {
	metrics.WriteGauge(w, "mbac_server_conns_active", "connections currently served", float64(s.ConnsActive))
	metrics.WriteCounter(w, "mbac_server_conns_accepted_total", "cumulative accepted connections", s.ConnsAccepted)
	metrics.WriteCounter(w, "mbac_server_conns_refused_total", "connections refused at accept (over max-conns)", s.ConnsRefused)
	metrics.WriteCounter(w, "mbac_server_conns_drain_refused_total", "connections refused while draining", s.ConnsDrainRef)
	metrics.WriteCounter(w, "mbac_server_conns_shed_total", "connections shed for a slow read side", s.ConnsShed)
	metrics.WriteCounter(w, "mbac_server_conns_rate_limited_total", "connections closed for exceeding the frame-rate cap", s.ConnsRateLimited)
	metrics.WriteCounter(w, "mbac_server_protocol_errors_total", "malformed request frames", s.ProtocolErrors)
	metrics.WriteCounter(w, "mbac_server_frames_total", "request frames processed", s.Frames)
	metrics.WriteCounter(w, "mbac_server_decisions_total", "admission decisions served", s.Decisions)
	metrics.WriteCounter(w, "mbac_server_batches_total", "AdmitBatch calls made", s.Batches)
	draining := 0.0
	if s.Draining {
		draining = 1
	}
	metrics.WriteGauge(w, "mbac_server_draining", "1 while a graceful drain is in progress", draining)
	metrics.WriteHistogram(w, "mbac_server_batch_size", "admission decisions coalesced per AdmitBatch call", s.BatchSizes)
}

// conn is one served connection: a reader goroutine (serve) that decodes,
// batches and decides, and a writer goroutine that flushes the encoded
// response backlog. The two meet at wr.
type conn struct {
	srv *Server
	nc  net.Conn
	rd  *wire.Reader
	wr  connWriter

	// drainDeadline, unix-nanos, is set by beginDrain: past it the reader
	// stops waiting for new frames (0 = not draining). Written by the
	// Shutdown goroutine, read by the reader when arming deadlines.
	drainDeadline atomic.Int64

	// Token bucket for the frame-rate cap; reader-goroutine-local.
	tokens     float64
	lastRefill time.Time

	// Reader-goroutine-local scratch, reused across frames so the steady
	// state serves without allocating.
	pendIDs   []uint64
	pendRates []float64
	pendReqs  []uint64
	decisions []gateway.Decision
	wireDecs  []wire.Decision
	encBuf    []byte
}

// newConn wires up a connection and its writer state.
func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{srv: s, nc: nc, rd: wire.NewReader(nc)}
	c.wr.init(s.cfg.WriteBuffer)
	c.tokens = float64(s.cfg.FrameRate)
	c.lastRefill = time.Now()
	return c
}

// beginDrain tells the connection to stop waiting for new frames after
// deadline. Frames already buffered (or arriving before the deadline) are
// still processed and their responses flushed — the "no decision lost"
// half of the drain contract.
func (c *conn) beginDrain(deadline time.Time) {
	c.drainDeadline.Store(deadline.UnixNano())
	// Re-arm the read deadline in case the reader is already blocked. The
	// reader re-applies the minimum of idle and drain deadlines on its
	// next pass, so a lost race here only delays the cut to the idle
	// timeout, and Shutdown's context still bounds the total drain.
	c.nc.SetReadDeadline(deadline)
}

// serve runs the reader loop; it owns connection teardown.
func (c *conn) serve() {
	c.srv.wg.Add(1) // the writer's share (the reader's was added at accept)
	go c.writeLoop()
	refusal := c.readLoop()
	// Flush any batched admits so in-flight decisions survive teardown
	// (EOF, drain deadline and protocol errors all land here).
	c.flushAdmits()
	if refusal != 0 {
		c.wr.enqueue(wire.AppendRefusal(c.encBuf[:0], 0, refusal))
	}
	c.wr.close() // the writer drains the backlog, then exits
	c.wr.wait()  // don't close the socket under an in-progress flush
	c.nc.Close()
	c.srv.remove(c)
}

// readLoop processes frames until the connection ends. It returns a
// non-zero refusal when the connection is being closed for cause, so the
// peer learns why before the socket closes.
func (c *conn) readLoop() wire.Refusal {
	var f wire.Frame
	for {
		// Arm the idle deadline, capped by the drain deadline once
		// Shutdown has begun.
		rd := time.Now().Add(c.srv.cfg.ReadTimeout)
		if dd := c.drainDeadline.Load(); dd != 0 {
			if d := time.Unix(0, dd); d.Before(rd) {
				rd = d
			}
		}
		c.nc.SetReadDeadline(rd)
		err := c.rd.Next(&f)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, net.ErrClosed) || isTimeout(err) {
				return 0 // clean close, drain cut, or idle cut
			}
			c.srv.protoErrs.Inc()
			return wire.RefuseProtocol
		}
		c.srv.frames.Inc()
		if !c.allowFrame() {
			c.srv.rateLimited.Inc()
			return wire.RefuseRateLimited
		}
		if shed := c.handle(&f); shed {
			c.srv.shed.Inc()
			return wire.RefuseSlowClient
		}
	}
}

// allowFrame charges the frame-rate token bucket.
func (c *conn) allowFrame() bool {
	limit := c.srv.cfg.FrameRate
	if limit == 0 {
		return true
	}
	now := time.Now()
	c.tokens += now.Sub(c.lastRefill).Seconds() * float64(limit)
	if burst := float64(limit); c.tokens > burst {
		c.tokens = burst
	}
	c.lastRefill = now
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// handle processes one decoded frame, appending responses to the write
// backlog. It reports whether the connection must be shed for a full
// backlog.
func (c *conn) handle(f *wire.Frame) (shed bool) {
	g := c.srv.cfg.Gateway
	switch f.Op {
	case wire.OpAdmit:
		c.pendIDs = append(c.pendIDs, f.Flow)
		c.pendRates = append(c.pendRates, f.Rate)
		c.pendReqs = append(c.pendReqs, f.ReqID)
		// The micro-batch: keep accumulating while the next frame is
		// already here; flush right before the first read that could
		// block, or at the batch cap.
		if len(c.pendIDs) >= c.srv.cfg.MaxBatch || !c.rd.FrameBuffered() {
			return c.flushAdmits()
		}
		return false
	case wire.OpAdmitBatch:
		// An explicit client-side batch: decide it as one unit, after any
		// pending singles (order preserved).
		if c.flushAdmits() {
			return true
		}
		c.decisions = c.decisions[:0]
		var err error
		c.decisions, err = g.AdmitBatch(f.Flows, f.Rates, c.decisions)
		if err != nil {
			// Lengths are validated by the wire decoder; an error here is
			// a server bug, but shed the connection rather than panic.
			return true
		}
		c.srv.decisions.Add(int64(len(c.decisions)))
		c.srv.batches.Inc()
		c.srv.batchSizes.Observe(float64(len(c.decisions)))
		c.wireDecs = c.wireDecs[:0]
		for _, d := range c.decisions {
			c.wireDecs = append(c.wireDecs, wire.Decision{
				Reason: uint8(d.Reason), Admissible: d.Admissible, Active: d.Active,
			})
		}
		buf, err := wire.AppendDecisionBatch(c.encBuf[:0], f.ReqID, c.wireDecs)
		if err != nil {
			return true // unreachable: the decoder bounded the batch size
		}
		c.encBuf = buf
		return c.wr.enqueue(buf)
	case wire.OpUpdateRate:
		if c.flushAdmits() {
			return true
		}
		st := wire.StatusOK
		if !(f.Rate >= 0) || f.Rate > maxFinite {
			st = wire.StatusInvalidRate
		} else if err := g.UpdateRate(f.Flow, f.Rate); err != nil {
			st = wire.StatusNotActive
		}
		return c.enqueueAck(f.ReqID, st)
	case wire.OpTouch:
		if c.flushAdmits() {
			return true
		}
		st := wire.StatusOK
		if err := g.Touch(f.Flow); err != nil {
			st = wire.StatusNotActive
		}
		return c.enqueueAck(f.ReqID, st)
	case wire.OpDepart:
		if c.flushAdmits() {
			return true
		}
		st := wire.StatusOK
		if err := g.Depart(f.Flow); err != nil {
			st = wire.StatusNotActive
		}
		return c.enqueueAck(f.ReqID, st)
	case wire.OpPing:
		if c.flushAdmits() {
			return true
		}
		c.encBuf = wire.AppendPong(c.encBuf[:0], f.ReqID)
		return c.wr.enqueue(c.encBuf)
	default:
		// A response op from a client is a protocol violation.
		c.srv.protoErrs.Inc()
		return true
	}
}

// enqueueAck encodes and enqueues one Ack response.
func (c *conn) enqueueAck(reqID uint64, st wire.Status) bool {
	c.encBuf = wire.AppendAck(c.encBuf[:0], reqID, st)
	return c.wr.enqueue(c.encBuf)
}

// maxFinite guards against +Inf reaching UpdateRate (NaN and negatives
// are caught by the f.Rate >= 0 comparison).
const maxFinite = 1.7976931348623157e308

// flushAdmits decides the pending Admit frames with one AdmitBatch call
// and enqueues one Decision frame per request. Reports shed like handle.
func (c *conn) flushAdmits() bool {
	if len(c.pendIDs) == 0 {
		return false
	}
	g := c.srv.cfg.Gateway
	c.decisions = c.decisions[:0]
	var err error
	c.decisions, err = g.AdmitBatch(c.pendIDs, c.pendRates, c.decisions)
	n := len(c.pendIDs)
	c.pendIDs = c.pendIDs[:0]
	c.pendRates = c.pendRates[:0]
	if err != nil || len(c.decisions) != n {
		c.pendReqs = c.pendReqs[:0]
		return true // server bug; shed rather than desync correlation
	}
	c.srv.decisions.Add(int64(n))
	c.srv.batches.Inc()
	c.srv.batchSizes.Observe(float64(n))
	buf := c.encBuf[:0]
	for i, d := range c.decisions {
		buf = wire.AppendDecision(buf, c.pendReqs[i], wire.Decision{
			Reason:     uint8(d.Reason),
			Admissible: d.Admissible,
			Active:     d.Active,
		})
	}
	c.encBuf = buf
	c.pendReqs = c.pendReqs[:0]
	return c.wr.enqueue(buf)
}

// writeLoop flushes the response backlog until the connection ends.
func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.wr.exit()
	for {
		buf, closed := c.wr.take()
		if len(buf) > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			if _, err := c.nc.Write(buf); err != nil {
				// Kick the reader off its blocking read; teardown follows.
				c.nc.Close()
				return
			}
		}
		if closed {
			return
		}
	}
}

// isTimeout reports whether err is a deadline error.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// connWriter is the double-buffered response backlog between the reader
// (producer) and the writer goroutine (consumer): the reader copies
// encoded frames into pending under mu; the writer swaps pending for the
// spare and flushes it, so the reader never blocks on the socket and the
// backlog length is the shed signal. Copying under the lock (instead of
// handing the reader's encode buffer over) is what keeps the two
// goroutines from ever sharing bytes.
type connWriter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte
	spare   []byte
	closed  bool
	done    chan struct{} // closed when the writer goroutine exits
	budget  int           // shed threshold, from Config.WriteBuffer
}

func (w *connWriter) init(budget int) {
	w.cond = sync.NewCond(&w.mu)
	w.done = make(chan struct{})
	w.budget = budget
}

// enqueue copies buf into the backlog, wakes the writer, and reports
// whether the backlog now exceeds the shed budget. buf remains owned by
// the caller.
func (w *connWriter) enqueue(buf []byte) (shed bool) {
	w.mu.Lock()
	w.pending = append(w.pending, buf...)
	over := w.budget > 0 && len(w.pending) > w.budget
	w.mu.Unlock()
	w.cond.Signal()
	return over
}

// take blocks until there is backlog to flush or the writer is closed,
// swapping the backlog out. closed is true when no more data will come.
func (w *connWriter) take() (buf []byte, closed bool) {
	w.mu.Lock()
	for len(w.pending) == 0 && !w.closed {
		w.cond.Wait()
	}
	buf = w.pending
	w.pending = w.spare[:0]
	w.spare = buf
	closed = w.closed && len(buf) == 0
	w.mu.Unlock()
	return buf, closed
}

// close tells the writer to finish after draining the backlog.
func (w *connWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Signal()
}

// exit marks the writer goroutine finished; called from writeLoop only.
func (w *connWriter) exit() {
	w.mu.Lock()
	w.closed = true // a failed writer also stops accepting work
	w.mu.Unlock()
	close(w.done)
}

// wait blocks until the writer goroutine has exited.
func (w *connWriter) wait() {
	<-w.done
}
