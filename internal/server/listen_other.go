//go:build !linux

package server

import "net"

// reusePortSupported: without SO_REUSEPORT semantics guaranteed, Listen
// falls back to N accept loops sharing one listener.
const reusePortSupported = false

// listenShard opens one plain TCP listener.
func listenShard(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
