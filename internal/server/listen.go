package server

import (
	"fmt"
	"net"
)

// Listen opens a set of shards TCP listeners for Serve's per-core accept
// sharding. Where the platform supports SO_REUSEPORT (Linux), each
// listener is an independent socket bound to the same address and the
// kernel spreads incoming connections across them — N accept queues, N
// accept loops, no shared lock. Elsewhere the fallback is one socket
// returned shards times: Serve then runs N accept loops over the shared
// listener, which still spreads the post-accept work even though the
// accept queue itself is shared.
//
// addr may carry port 0; the first bind picks the port and the remaining
// shards bind to the resolved address, so every listener in the set
// reports the same Addr. On any later failure the already-open listeners
// are closed before returning.
func Listen(addr string, shards int) ([]net.Listener, error) {
	if shards < 1 {
		return nil, fmt.Errorf("server: Listen needs at least one shard, got %d", shards)
	}
	first, err := listenShard(addr)
	if err != nil {
		return nil, err
	}
	lns := []net.Listener{first}
	if shards == 1 {
		return lns, nil
	}
	if !reusePortSupported {
		// Shared-listener fallback: Accept is safe for concurrent use.
		for i := 1; i < shards; i++ {
			lns = append(lns, first)
		}
		return lns, nil
	}
	resolved := first.Addr().String() // pin the port the first bind chose
	for i := 1; i < shards; i++ {
		ln, err := listenShard(resolved)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		lns = append(lns, ln)
	}
	return lns, nil
}
