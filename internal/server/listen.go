package server

import (
	"fmt"
	"net"
)

// Listen opens a set of shards TCP listeners for Serve's per-core accept
// sharding. Where the platform supports SO_REUSEPORT (Linux), each
// listener is an independent socket bound to the same address and the
// kernel spreads incoming connections across them — N accept queues, N
// accept loops, no shared lock. Elsewhere the fallback is one socket
// returned shards times: Serve then runs N accept loops over the shared
// listener, which still spreads the post-accept work even though the
// accept queue itself is shared.
//
// addr may carry port 0; the first bind picks the port and the remaining
// shards bind to the resolved address, so every listener in the set
// reports the same Addr.
//
// Sharding is best-effort on every platform: if per-shard rebinding is
// unavailable (no SO_REUSEPORT) or fails mid-set (a kernel that accepts
// the socket option but refuses the second bind), Listen degrades to the
// shared-listener set instead of erroring — shards > 1 never makes an
// address that binds once fail to serve. Only the first bind's failure is
// an error.
func Listen(addr string, shards int) ([]net.Listener, error) {
	if shards < 1 {
		return nil, fmt.Errorf("server: Listen needs at least one shard, got %d", shards)
	}
	first, err := listenShard(addr)
	if err != nil {
		return nil, err
	}
	rebind := listenShard
	if !reusePortSupported {
		rebind = nil
	}
	return assembleShards(first, shards, rebind), nil
}

// assembleShards builds the shards-long listener set over the first bind:
// one independent rebind per extra shard when rebind is non-nil and every
// rebind succeeds, else the first listener shared shards times (Accept is
// safe for concurrent use). The fallback is all-or-nothing — a set mixing
// private and shared accept queues would spread load unevenly — and any
// partially-opened rebinds are closed before falling back. Both platform
// paths (and their failure modes) funnel through here, so the assembly is
// testable without build tags.
func assembleShards(first net.Listener, shards int, rebind func(addr string) (net.Listener, error)) []net.Listener {
	lns := []net.Listener{first}
	if shards == 1 {
		return lns
	}
	if rebind != nil {
		resolved := first.Addr().String() // pin the port the first bind chose
		for i := 1; i < shards; i++ {
			ln, err := rebind(resolved)
			if err != nil {
				for _, l := range lns[1:] {
					l.Close()
				}
				lns = lns[:1]
				break
			}
			lns = append(lns, ln)
		}
		if len(lns) == shards {
			return lns
		}
	}
	for i := 1; i < shards; i++ {
		lns = append(lns, first)
	}
	return lns
}
