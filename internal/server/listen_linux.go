//go:build linux

package server

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported: Linux spreads connections across a SO_REUSEPORT
// listener set in the kernel, which is exactly the per-core accept
// sharding Listen wants.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT, which the stdlib syscall package does not
// export on Linux. Stable ABI since Linux 3.9.
const soReusePort = 0xf

// listenShard opens one TCP listener with SO_REUSEPORT set before bind,
// so several shards can own the same address.
func listenShard(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var sockErr error
			err := c.Control(func(fd uintptr) {
				sockErr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return sockErr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
