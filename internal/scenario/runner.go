package scenario

import (
	"context"
	"fmt"

	"repro/internal/qos"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/theory"
)

// Result is one executed scenario: the full cell matrix, the graded
// verdict, and the per-seed grading notes the report quotes.
type Result struct {
	Config *Config `json:"config"`
	// Reference is the interval hypothesis's reference level (0 for other
	// kinds); Sqrt2Law is always the Prop 3.3 prediction for the
	// configured p_q, quoted in every report.
	Reference float64 `json:"reference,omitempty"`
	Sqrt2Law  float64 `json:"sqrt2_law"`

	Cells   []CellResult `json:"cells"`
	Verdict Verdict      `json:"verdict"`
	// Notes are the per-seed grading lines (one per comparison), in
	// matrix order.
	Notes []string `json:"notes"`
	// Effect is the one-line effect-size summary.
	Effect string `json:"effect,omitempty"`
}

// Matched reports whether the graded verdict equals the config's
// expectation.
func (r *Result) Matched() bool { return r.Verdict == r.Config.Expect }

// Run executes the scenario's seed x arm matrix and grades it. The matrix
// is ordered seed-major, arm-minor; every cell is deterministic in
// (seed, arm), so the whole Result — and the reports rendered from it — is
// reproducible byte for byte.
//
// Cells execute in parallel on the shared replication pool (sim.Replicated,
// one cell per stripe) but land in the slice by matrix index, so the
// collected order — and therefore every rendered report — is byte-identical
// to the historical sequential loop. The pool's substreams go unused: each
// cell derives all of its randomness from its own (seed, arm) pair, which
// is what makes the parallel schedule invisible in the output.
func Run(ctx context.Context, cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Sqrt2Law: theory.ImpulsiveOverflow(cfg.Gateway.PQ)}
	nArms := len(cfg.Arms)
	cells := make([]CellResult, len(cfg.Seeds)*nArms)
	pool := sim.Replicated{
		Replications: len(cells),
		Stripes:      len(cells), // one cell per stripe: full matrix parallelism
	}
	err := pool.Run(ctx, func(_, rep int, _ *rng.PCG) error {
		seed, arm := cfg.Seeds[rep/nArms], cfg.Arms[rep%nArms]
		cell, err := runCell(ctx, cfg, arm, seed)
		if err != nil {
			return fmt.Errorf("scenario %s: seed %d arm %q: %w", cfg.Name, seed, arm.Name, err)
		}
		cells[rep] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	grade(res)
	return res, nil
}

// cellAt finds the matrix cell for (seed, arm).
func (r *Result) cellAt(seed uint64, arm string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Seed == seed && r.Cells[i].Arm == arm {
			return &r.Cells[i]
		}
	}
	return nil
}

// grade applies the typed hypothesis to the finished matrix. A matrix
// with nothing to grade — no cells, or no comparison any grader could
// complete — is Inconclusive, never vacuously Confirmed: a Confirmed
// verdict must always be backed by at least one graded comparison.
func grade(r *Result) {
	if len(r.Cells) == 0 {
		r.Verdict = Inconclusive
		r.Notes = append(r.Notes, "no cells to grade — inconclusive")
		return
	}
	switch r.Config.Check.Kind {
	case HypDominance:
		gradeDominance(r)
	case HypInterval:
		gradeInterval(r)
	case HypInvariant:
		gradeInvariant(r)
	}
}

func gradeDominance(r *Result) {
	d := r.Config.Check.Dominance
	verdict := Confirmed
	graded := 0
	ratioSum, ratioN := 0.0, 0
	for _, seed := range r.Config.Seeds {
		a, b := r.cellAt(seed, d.A), r.cellAt(seed, d.B)
		va, vb := a.Metric(d.Metric), b.Metric(d.Metric)
		pass := false
		switch {
		case va == 0 && vb == 0:
			// No signal on either arm: the comparison is vacuous.
			if verdict == Confirmed {
				verdict = Inconclusive
			}
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d: %s is 0 on both arms — inconclusive", seed, d.Metric))
			continue
		case d.Relation == RelGreater:
			pass = va > vb && va >= d.MinRatio*vb
		case d.Relation == RelLess:
			pass = va < vb && va*d.MinRatio <= vb
		}
		if vb > 0 && va > 0 {
			ratioSum += va / vb
			ratioN++
		}
		graded++
		if !pass {
			verdict = Refuted
		}
		r.Notes = append(r.Notes, fmt.Sprintf("seed %d: %s(%s) = %.6g vs %s(%s) = %.6g, want %s (min ratio %g): %s",
			seed, d.Metric, d.A, va, d.Metric, d.B, vb, d.Relation, d.MinRatio, passString(pass)))
	}
	if ratioN > 0 {
		r.Effect = fmt.Sprintf("mean %s ratio %s/%s = %.4g over %d seeds", d.Metric, d.A, d.B, ratioSum/float64(ratioN), ratioN)
	}
	if graded == 0 {
		verdict = Inconclusive
	}
	r.Verdict = verdict
}

func gradeInterval(r *Result) {
	iv := r.Config.Check.Interval
	switch iv.Reference {
	case "sqrt2-law":
		r.Reference = r.Sqrt2Law
	case "pq":
		r.Reference = r.Config.Gateway.PQ
	case "masking":
		// Eq. 41: in the masking regime the admission-time estimation error
		// is still present when the flow pool turns over, inflating the
		// overflow probability to (SVR*alpha_q + 1) * p_q. The system's
		// mu/sigma come from the churn workload's flow-rate marginal.
		if m, err := buildModel(&r.Config.Workload); err == nil {
			ts := m.Stats()
			r.Reference = theory.MaskingOverflow(
				theory.System{Mu: ts.Mean, Sigma: ts.StdDev()},
				r.Config.Gateway.PQ,
			)
		}
	case "value":
		r.Reference = iv.Value
	}
	var want qos.Verdict
	if iv.QoSVerdict != "" {
		want, _ = qos.ParseVerdict(iv.QoSVerdict)
	}
	verdict := Confirmed
	graded := 0
	ratioSum, ratioN := 0.0, 0
	for i := range r.Cells {
		cell := &r.Cells[i]
		e := cell.Overflow
		if cell.QoS == qos.VerdictInsufficient && iv.QoSVerdict != "insufficient" {
			if verdict == Confirmed {
				verdict = Inconclusive
			}
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d/%s: %d window samples — insufficient to grade", cell.Seed, cell.Arm, e.N))
			continue
		}
		pass := false
		switch iv.Mode {
		case IntervalCovers:
			pass = e.Lo <= r.Reference && r.Reference <= e.Hi
		case IntervalAtMost:
			pass = e.Lo <= r.Reference
		case IntervalAtLeast:
			pass = e.Hi >= r.Reference
		}
		note := fmt.Sprintf("seed %d/%s: p_f = %.4g [%.4g, %.4g] (n=%d) %s reference %.4g",
			cell.Seed, cell.Arm, e.P, e.Lo, e.Hi, e.N, iv.Mode, r.Reference)
		if iv.QoSVerdict != "" {
			if cell.QoS != want {
				pass = false
			}
			note += fmt.Sprintf(", qos %s (want %s)", cell.QoS, want)
		}
		graded++
		if !pass {
			verdict = Refuted
		}
		r.Notes = append(r.Notes, note+": "+passString(pass))
		if r.Reference > 0 {
			ratioSum += e.P / r.Reference
			ratioN++
		}
	}
	if ratioN > 0 {
		r.Effect = fmt.Sprintf("mean p_f / reference = %.4g over %d cells", ratioSum/float64(ratioN), ratioN)
	}
	if graded == 0 {
		verdict = Inconclusive
	}
	r.Verdict = verdict
}

func gradeInvariant(r *Result) {
	inv := r.Config.Check.Invariant
	verdict := Confirmed
	graded := 0
	for i := range r.Cells {
		cell := &r.Cells[i]
		for _, check := range inv.Checks {
			holds := false
			detail := ""
			switch check {
			case InvLifecycle:
				holds = cell.Stats.LifecycleBalanced()
				detail = fmt.Sprintf("admitted %d = departed %d + expired %d + active %d",
					cell.Stats.Admitted, cell.Stats.Departed, cell.Stats.Expired, cell.Stats.Active)
			case InvExpiredFlows:
				holds = cell.Stats.Expired > 0
				detail = fmt.Sprintf("expired %d", cell.Stats.Expired)
			case InvRejectedFlows:
				holds = cell.Stats.Rejected > 0
				detail = fmt.Sprintf("rejected %d", cell.Stats.Rejected)
			case InvSubstrateIdentity:
				holds = cell.NetMatched
				detail = fmt.Sprintf("in-process twin matched: %t", cell.NetMatched)
			case InvMigratedFlows:
				holds = cell.Migrations > 0
				detail = fmt.Sprintf("migrated %d", cell.Migrations)
			}
			graded++
			if !holds {
				verdict = Refuted
			}
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d/%s: %s (%s): %s",
				cell.Seed, cell.Arm, check, detail, passString(holds)))
		}
		for _, b := range inv.Bounds {
			v := cell.Metric(b.Metric)
			// A zero metric means the substrate never produced it — the
			// bound must fail rather than pass vacuously.
			holds := v > 0 && v <= b.AtMost
			graded++
			if !holds {
				verdict = Refuted
			}
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d/%s: %s = %.4g in (0, %.4g]: %s",
				cell.Seed, cell.Arm, b.Metric, v, b.AtMost, passString(holds)))
		}
	}
	if graded == 0 {
		verdict = Inconclusive
	}
	r.Verdict = verdict
}

func passString(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}
