package scenario

import (
	"context"
	"path/filepath"
	"testing"
)

// TestNetworkTwinVerdict runs the built-in wire-identity scenario — the
// churn workload replayed through a real loopback client -> server ->
// gateway stack — and checks the network substrate is observationally
// identical to its in-process twin: same replay counters, same gateway
// statistics, same graded verdict. This is the scenario engine's version
// of the serving layer's substrate-identity guarantee, and it runs in
// tier-1 (and under -race via `make race`) so the wire path cannot drift.
func TestNetworkTwinVerdict(t *testing.T) {
	cfg, err := Load(filepath.Join("..", "..", "scenarios", "wire-identity.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Target != TargetNetwork {
		t.Fatalf("wire-identity must use the network target, got %q", cfg.Target)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		if !cell.NetMatched {
			t.Errorf("seed %d/%s: network substrate diverged from the in-process twin: %+v",
				cell.Seed, cell.Arm, cell.Replay)
		}
		if !cell.Stats.LifecycleBalanced() {
			t.Errorf("seed %d/%s: lifecycle unbalanced: %+v", cell.Seed, cell.Arm, cell.Stats)
		}
	}
	if res.Verdict != cfg.Expect {
		t.Fatalf("verdict %s, expected %s; notes:\n%s", res.Verdict, cfg.Expect, res.Notes)
	}
}
