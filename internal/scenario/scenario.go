// Package scenario is the declarative experiment engine: a Config (a Go
// struct, JSON on disk) names a workload, a target substrate, the seeds,
// the controlled and varied variables, and a typed hypothesis; Run
// executes the seed x arm matrix deterministically on the shared worker
// pool, grades the outcome through the qos/stats layers, and returns a
// Result that renders as a FINDINGS-style markdown report plus a
// machine-readable JSON verdict.
//
// The point of the typed hypothesis is that a scenario cannot end in a
// shrug: every run grades to Confirmed, Refuted, or Inconclusive under
// rules fixed by the config, so the built-in scenario suite under
// scenarios/ doubles as an executable restatement of the paper's claims
// (the sqrt2 law of Prop 3.3, certainty equivalence vs peak-rate
// provisioning, robustness of the serving layer under faults).
package scenario

import (
	"encoding/json"
	"fmt"
)

// Verdict is the outcome of grading one scenario.
type Verdict int

const (
	// Inconclusive: the data cannot grade the hypothesis (too few window
	// samples, or a dominance comparison where both arms are zero).
	Inconclusive Verdict = iota
	// Confirmed: the hypothesis held for every seed of the matrix.
	Confirmed
	// Refuted: at least one seed contradicted the hypothesis.
	Refuted
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Inconclusive:
		return "Inconclusive"
	case Confirmed:
		return "Confirmed"
	case Refuted:
		return "Refuted"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// ParseVerdict is the inverse of Verdict.String.
func ParseVerdict(s string) (Verdict, error) {
	for v := Inconclusive; v <= Refuted; v++ {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown verdict %q (want Inconclusive, Confirmed or Refuted)", s)
}

// MarshalJSON encodes the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON decodes the string form.
func (v *Verdict) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseVerdict(s)
	if err != nil {
		return err
	}
	*v = p
	return nil
}

// HypothesisKind selects the grading rule a scenario's hypothesis uses.
type HypothesisKind int

const (
	// HypDominance compares one scalar metric between two named arms,
	// seed by seed: arm A must relate to arm B (greater/less) with at
	// least the configured effect-size ratio on every seed.
	HypDominance HypothesisKind = iota
	// HypInterval grades each cell's windowed overflow estimate against a
	// reference level (the sqrt2-law prediction, the target p_q, or an
	// explicit value): the Wilson interval must cover it, sit at or below
	// it, or sit at or above it.
	HypInterval
	// HypInvariant asserts structural predicates (flow-lifecycle
	// conservation, lease expiries observed, substrate identity) over
	// every cell of the matrix.
	HypInvariant
)

// String implements fmt.Stringer.
func (k HypothesisKind) String() string {
	switch k {
	case HypDominance:
		return "dominance"
	case HypInterval:
		return "interval"
	case HypInvariant:
		return "invariant"
	}
	return fmt.Sprintf("HypothesisKind(%d)", int(k))
}

// ParseHypothesisKind is the inverse of HypothesisKind.String.
func ParseHypothesisKind(s string) (HypothesisKind, error) {
	for k := HypDominance; k <= HypInvariant; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown hypothesis kind %q (want dominance, interval or invariant)", s)
}

// MarshalJSON encodes the kind as its string form.
func (k HypothesisKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes the string form.
func (k *HypothesisKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseHypothesisKind(s)
	if err != nil {
		return err
	}
	*k = p
	return nil
}

// InvariantKind names one structural predicate an invariant hypothesis
// asserts over every cell.
type InvariantKind int

const (
	// InvLifecycle: Admitted = Departed + Expired + Active held at the end
	// of the (drained) run — gateway.Stats.LifecycleBalanced.
	InvLifecycle InvariantKind = iota
	// InvExpiredFlows: the lease sweep actually fired (Expired > 0) — the
	// check that a leaky-client scenario exercised reclamation rather than
	// passing vacuously.
	InvExpiredFlows
	// InvRejectedFlows: the controller actually refused work (Rejected >
	// 0) — guards against operating points too loose to mean anything.
	InvRejectedFlows
	// InvSubstrateIdentity: the network run produced decision counts and a
	// final gateway state identical to an in-process twin replaying the
	// same schedule. Only valid with the network target.
	InvSubstrateIdentity
	// InvMigratedFlows: the drain actually moved flows between instances
	// (Migrations > 0) — the check that a drain/failover scenario
	// exercised migration rather than passing vacuously. Only valid with
	// a cluster topology.
	InvMigratedFlows
)

// String implements fmt.Stringer.
func (k InvariantKind) String() string {
	switch k {
	case InvLifecycle:
		return "lifecycle"
	case InvExpiredFlows:
		return "expired-flows"
	case InvRejectedFlows:
		return "rejected-flows"
	case InvSubstrateIdentity:
		return "substrate-identity"
	case InvMigratedFlows:
		return "migrated-flows"
	}
	return fmt.Sprintf("InvariantKind(%d)", int(k))
}

// ParseInvariantKind is the inverse of InvariantKind.String.
func ParseInvariantKind(s string) (InvariantKind, error) {
	for k := InvLifecycle; k <= InvMigratedFlows; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown invariant %q (want lifecycle, expired-flows, rejected-flows, substrate-identity or migrated-flows)", s)
}

// MarshalJSON encodes the kind as its string form.
func (k InvariantKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes the string form.
func (k *InvariantKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseInvariantKind(s)
	if err != nil {
		return err
	}
	*k = p
	return nil
}

// Metric names one per-cell scalar a dominance hypothesis can compare.
type Metric int

const (
	// MetricAdmitted: cumulative admissions.
	MetricAdmitted Metric = iota
	// MetricRejected: cumulative capacity rejections.
	MetricRejected
	// MetricExpired: cumulative lease-sweep reclaims.
	MetricExpired
	// MetricStormAdmitted: admissions granted while the gateway served
	// under its degraded policy.
	MetricStormAdmitted
	// MetricDegradedTicks: measurement ticks served degraded.
	MetricDegradedTicks
	// MetricUtilization: mean measured aggregate rate over capacity.
	MetricUtilization
	// MetricServedP50: median served seconds per decision (network target
	// only; 0 in-process).
	MetricServedP50
	// MetricServedP99: 99th-percentile served seconds per decision
	// (network target only; 0 in-process).
	MetricServedP99
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricAdmitted:
		return "admitted"
	case MetricRejected:
		return "rejected"
	case MetricExpired:
		return "expired"
	case MetricStormAdmitted:
		return "storm-admitted"
	case MetricDegradedTicks:
		return "degraded-ticks"
	case MetricUtilization:
		return "utilization"
	case MetricServedP50:
		return "served-p50"
	case MetricServedP99:
		return "served-p99"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ParseMetric is the inverse of Metric.String.
func ParseMetric(s string) (Metric, error) {
	for m := MetricAdmitted; m <= MetricServedP99; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown metric %q", s)
}

// MarshalJSON encodes the metric as its string form.
func (m Metric) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON decodes the string form.
func (m *Metric) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseMetric(s)
	if err != nil {
		return err
	}
	*m = p
	return nil
}

// Relation is the direction of a dominance comparison.
type Relation int

const (
	// RelGreater: arm A's metric must strictly exceed arm B's.
	RelGreater Relation = iota
	// RelLess: arm A's metric must be strictly below arm B's.
	RelLess
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case RelGreater:
		return "greater"
	case RelLess:
		return "less"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// ParseRelation is the inverse of Relation.String.
func ParseRelation(s string) (Relation, error) {
	for r := RelGreater; r <= RelLess; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown relation %q (want greater or less)", s)
}

// MarshalJSON encodes the relation as its string form.
func (r Relation) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON decodes the string form.
func (r *Relation) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseRelation(s)
	if err != nil {
		return err
	}
	*r = p
	return nil
}

// IntervalMode selects how an interval hypothesis grades the Wilson
// interval against its reference level.
type IntervalMode int

const (
	// IntervalCovers: the interval must contain the reference (the
	// prediction is consistent with the measurement).
	IntervalCovers IntervalMode = iota
	// IntervalAtMost: the interval's lower bound must not exceed the
	// reference (the measurement is not significantly above it).
	IntervalAtMost
	// IntervalAtLeast: the interval's upper bound must not fall below the
	// reference (the measurement is not significantly below it).
	IntervalAtLeast
)

// String implements fmt.Stringer.
func (m IntervalMode) String() string {
	switch m {
	case IntervalCovers:
		return "covers"
	case IntervalAtMost:
		return "at-most"
	case IntervalAtLeast:
		return "at-least"
	}
	return fmt.Sprintf("IntervalMode(%d)", int(m))
}

// ParseIntervalMode is the inverse of IntervalMode.String.
func ParseIntervalMode(s string) (IntervalMode, error) {
	for m := IntervalCovers; m <= IntervalAtLeast; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown interval mode %q (want covers, at-most or at-least)", s)
}

// MarshalJSON encodes the mode as its string form.
func (m IntervalMode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON decodes the string form.
func (m *IntervalMode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	p, err := ParseIntervalMode(s)
	if err != nil {
		return err
	}
	*m = p
	return nil
}
