package scenario

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// TestRunParallelMatchesSequential pins the parallel matrix schedule to its
// sequential definition: Run farms the seed x arm cells out to the
// replication pool, but every cell is deterministic in (seed, arm) and
// collected by matrix index, so the Result — cells, verdict, notes, and the
// rendered reports — must be byte-identical to the plain seed-major,
// arm-minor loop Run replaced.
func TestRunParallelMatchesSequential(t *testing.T) {
	cfg, err := Load(filepath.Join("..", "..", "scenarios", "flash-crowd.json"))
	if err != nil {
		t.Fatal(err)
	}

	par, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The historical sequential runner, inlined.
	seq := &Result{Config: cfg, Sqrt2Law: par.Sqrt2Law}
	for _, seed := range cfg.Seeds {
		for _, arm := range cfg.Arms {
			cell, err := runCell(context.Background(), cfg, arm, seed)
			if err != nil {
				t.Fatalf("seed %d arm %q: %v", seed, arm.Name, err)
			}
			seq.Cells = append(seq.Cells, cell)
		}
	}
	grade(seq)

	if len(par.Cells) != len(seq.Cells) {
		t.Fatalf("cell count: parallel %d, sequential %d", len(par.Cells), len(seq.Cells))
	}
	for i := range seq.Cells {
		if !reflect.DeepEqual(par.Cells[i], seq.Cells[i]) {
			t.Errorf("cell %d (seed %d/%s) diverges:\nparallel:   %+v\nsequential: %+v",
				i, seq.Cells[i].Seed, seq.Cells[i].Arm, par.Cells[i], seq.Cells[i])
		}
	}
	if par.Verdict != seq.Verdict || !reflect.DeepEqual(par.Notes, seq.Notes) || par.Effect != seq.Effect {
		t.Errorf("grading diverges: parallel (%s, %q), sequential (%s, %q)",
			par.Verdict, par.Effect, seq.Verdict, seq.Effect)
	}
	if pm, sm := par.Markdown(), seq.Markdown(); pm != sm {
		t.Error("markdown reports differ between parallel and sequential runs")
	}
	pj, err1 := par.JSONVerdict()
	sj, err2 := seq.JSONVerdict()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if string(pj) != string(sj) {
		t.Error("JSON reports differ between parallel and sequential runs")
	}
}

// TestRunPropagatesCellError checks the pool path still surfaces a cell
// failure with the scenario/seed/arm context attached.
func TestRunPropagatesCellError(t *testing.T) {
	cfg, err := Load(filepath.Join("..", "..", "scenarios", "flash-crowd.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatal("cancelled context must fail the run")
	} else if s := fmt.Sprint(err); s == "" {
		t.Fatal("empty error")
	}
}

// TestGradeEmptyIsInconclusive: a matrix with nothing to grade — no cells
// at all, or cells none of the graders can complete a comparison on —
// must grade Inconclusive, never vacuously Confirmed.
func TestGradeEmptyIsInconclusive(t *testing.T) {
	for _, kind := range []HypothesisKind{HypDominance, HypInterval, HypInvariant} {
		r := &Result{Config: &Config{Check: Hypothesis{Kind: kind}}}
		grade(r)
		if r.Verdict != Inconclusive {
			t.Errorf("%s over zero cells graded %s, want Inconclusive", kind, r.Verdict)
		}
	}
	// An invariant hypothesis whose cells yield no checks or bounds has
	// zero graded comparisons even with cells present.
	r := &Result{
		Config: &Config{Check: Hypothesis{Kind: HypInvariant, Invariant: &Invariant{}}},
		Cells:  []CellResult{{Seed: 1, Arm: "a"}},
	}
	grade(r)
	if r.Verdict != Inconclusive {
		t.Errorf("invariant with no checks graded %s, want Inconclusive", r.Verdict)
	}
}

// TestValidatePositionalAxisErrors pins the positional form of the empty
// seeds/arms rejections.
func TestValidatePositionalAxisErrors(t *testing.T) {
	cfg := &Config{Name: "x"}
	if err := cfg.Validate(); err == nil || err.Error() != "scenario: seeds: at least one seed is required" {
		t.Errorf("empty seeds: %v", err)
	}
}
