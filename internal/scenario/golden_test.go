package scenario

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden scenario reports")

// goldenScenarios are the fast built-in scenarios whose full markdown and
// JSON reports are locked byte-for-byte: the engine promises that the same
// config and seeds reproduce the identical report on any machine, so any
// diff here is either a real behavior change (regenerate deliberately with
// -update-golden) or a lost determinism guarantee (a bug).
var goldenScenarios = []string{"lease-leaky-clients", "flash-crowd", "cluster-skew", "cluster-drain", "masking-regime-adaptive", "tc-shift-fixed-vs-adaptive"}

func TestGoldenScenarioReports(t *testing.T) {
	for _, name := range goldenScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := Load(filepath.Join("..", "..", "scenarios", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			md := res.Markdown()
			js, err := res.JSONVerdict()
			if err != nil {
				t.Fatal(err)
			}

			// Determinism within a process: a second run must be
			// byte-identical before we even look at the checked-in golden.
			res2, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			md2 := res2.Markdown()
			js2, err := res2.JSONVerdict()
			if err != nil {
				t.Fatal(err)
			}
			if md != md2 || string(js) != string(js2) {
				t.Fatal("two runs of the same scenario produced different reports")
			}

			dir := filepath.Join("..", "..", "results", "golden", "scenario")
			for _, g := range []struct {
				path string
				got  string
			}{
				{filepath.Join(dir, name+".md"), md},
				{filepath.Join(dir, name+".json"), string(js)},
			} {
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(g.path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(g.path, []byte(g.got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(g.path)
				if err != nil {
					t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
				}
				if g.got != string(want) {
					t.Errorf("%s drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s",
						g.path, g.got, want)
				}
			}
		})
	}
}
