package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/qos"
)

// Config is one declarative scenario: the workload, the target substrate,
// the seeds (replication axis), the arms (varied variable), the fault
// schedule, and the typed hypothesis that grades the matrix. It decodes
// strictly — unknown fields, unknown names and non-finite numbers are
// rejected with positional errors — so a typo'd scenario fails loudly at
// load time, never by silently running a different experiment.
type Config struct {
	// Name is the scenario's identifier (also the report file stem).
	Name string `json:"name"`
	// Title is the human headline of the FINDINGS report.
	Title string `json:"title"`
	// HypothesisText is the prose statement of the hypothesis, quoted
	// verbatim in the report.
	HypothesisText string `json:"hypothesis_text"`
	// Seeds is the replication axis: the full matrix runs once per seed
	// and the hypothesis must hold on every one.
	Seeds []uint64 `json:"seeds"`
	// Target selects the substrate: "in-process" (direct gateway calls) or
	// "network" (client -> TCP server -> gateway on loopback).
	Target string `json:"target"`
	// Expect is the verdict the suite asserts; cmd/scenario -strict fails
	// when the graded verdict differs.
	Expect Verdict `json:"expect"`

	Workload Workload `json:"workload"`
	Gateway  Gateway  `json:"gateway"`
	// Cluster, when set, fans the gateway out to a fleet of identical
	// instances behind the headroom-scored router (internal/cluster).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Arms is the varied variable: each arm names an admission policy (and
	// optionally a degraded policy) the whole workload is replayed
	// against.
	Arms []Arm `json:"arms"`
	// Faults is the estimator fault schedule, in virtual time.
	Faults []FaultWindow `json:"faults,omitempty"`

	Check Hypothesis `json:"check"`
}

// Workload describes the offered load.
type Workload struct {
	// Kind selects the driver: "impulsive" (the Prop 3.3 fill-then-redraw
	// steady state, one overflow indicator per replication) or "churn"
	// (loadgen arrivals/departures replayed through the gateway with
	// measurement ticks).
	Kind string `json:"kind"`

	// Impulsive fields.
	// Replications is the ensemble size per seed.
	Replications int `json:"replications,omitempty"`

	// Churn fields.
	Lambda   float64 `json:"lambda,omitempty"`   // flow arrival rate
	Hold     float64 `json:"hold,omitempty"`     // mean holding time
	Duration float64 `json:"duration,omitempty"` // schedule length, virtual time
	Tick     float64 `json:"tick,omitempty"`     // measurement period (default 0.5)
	// ArrivalCV selects Gamma-burst arrivals (see loadgen.Config).
	ArrivalCV float64 `json:"arrival_cv,omitempty"`

	// SVR and TC parameterize the default RCBR flow-rate model (mean 1);
	// Model overrides it. Impulsive workloads use SVR only.
	SVR   float64    `json:"svr,omitempty"`
	TC    float64    `json:"tc,omitempty"`
	Model *ModelSpec `json:"model,omitempty"`

	// Crowd is the flash-crowd window (factor >= 1 required when set).
	Crowd *CrowdSpec `json:"crowd,omitempty"`
	// Clients is the misbehaving client population.
	Clients *ClientSpec `json:"clients,omitempty"`
	// Shift, when set, swaps the flow-rate model for flows arriving at or
	// after Shift.At — a mid-run change in the traffic's correlation
	// structure the adaptive measurement tier must detect (churn only).
	Shift *ShiftSpec `json:"shift,omitempty"`
	// Renegotiate turns on the paper's renegotiated-CBR dynamics: admitted
	// flows keep redrawing their rate at the model's segment boundaries
	// instead of freezing the admission draw, so the measured aggregate
	// fluctuates at the model's correlation time-scale (churn only).
	Renegotiate bool `json:"renegotiate,omitempty"`
}

// ShiftSpec is the JSON form of loadgen's mid-run model shift.
type ShiftSpec struct {
	// At is the virtual time from which arriving flows draw their rates
	// from Model instead of the workload's base model.
	At    float64   `json:"at"`
	Model ModelSpec `json:"model"`
}

// CrowdSpec is the JSON form of loadgen.Crowd.
type CrowdSpec struct {
	Factor float64 `json:"factor"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
}

// ClientSpec is the JSON form of fault.ClientPlan.
type ClientSpec struct {
	// LeakP is the probability a departing flow leaks its slot.
	LeakP float64 `json:"leak_p,omitempty"`
	// Lie multiplies the declared rate (0 or 1 = honest).
	Lie float64 `json:"lie,omitempty"`
}

// ModelSpec names a flow-rate model. Kind is one of "rcbr", "onoff",
// "constant" or "mixture"; mixture components recurse one level.
type ModelSpec struct {
	Kind string `json:"kind"`
	// rcbr: mean Mu (default 1), SVR, TC.
	Mu  float64 `json:"mu,omitempty"`
	SVR float64 `json:"svr,omitempty"`
	TC  float64 `json:"tc,omitempty"`
	// onoff: Peak, OnTime, OffTime.
	Peak    float64 `json:"peak,omitempty"`
	OnTime  float64 `json:"on_time,omitempty"`
	OffTime float64 `json:"off_time,omitempty"`
	// constant: Rate.
	Rate float64 `json:"rate,omitempty"`
	// mixture: weighted components.
	Mix []MixComponent `json:"mix,omitempty"`
}

// MixComponent is one weighted class of a mixture model.
type MixComponent struct {
	Weight float64   `json:"weight"`
	Model  ModelSpec `json:"model"`
}

// Gateway describes the controlled gateway configuration shared by every
// arm.
type Gateway struct {
	Capacity float64 `json:"capacity"`
	// PQ is the QoS target p_q the controllers aim at and the audit grades
	// against.
	PQ float64 `json:"pq"`
	// Estimator is "memoryless", "exponential", "window", "aggregate" or
	// "oracle"; Memory is T_m (exponential/aggregate, where 0 means a
	// memoryless mean) or W (window). The aggregate estimator decides from
	// the aggregate rate alone — no per-flow rate input (Section 7).
	Estimator string  `json:"estimator"`
	Memory    float64 `json:"memory,omitempty"`
	// Adaptive attaches the online time-scale controller: each cell
	// gateway retunes its estimator memory toward the critical time-scale
	// T~_h = Th/sqrt(n) measured from its own traffic (churn workloads
	// with a memory-bearing estimator only).
	Adaptive bool `json:"adaptive,omitempty"`
	// Th is the mean holding time the adaptive controller targets
	// (default: the churn workload's hold).
	Th float64 `json:"th,omitempty"`

	FlowTTL        float64 `json:"flow_ttl,omitempty"`
	StaleAfter     int     `json:"stale_after,omitempty"`
	OverflowWindow int     `json:"overflow_window,omitempty"`
}

// ClusterSpec replaces the single cell gateway with a fleet: Instances
// copies of the Gateway configuration (capacity is per instance) behind
// the placement router, with churn events routed through headroom
// scoring and flow pinning. The interval hypothesis then grades the
// WORST instance's overflow audit — the per-instance claim, not the
// fleet average. Cluster topologies require a churn workload on the
// in-process target, and are incompatible with estimator fault windows
// (those wrap a single estimator).
type ClusterSpec struct {
	// Instances is the fleet size (at least 2 — a cluster of one is just
	// the plain churn cell).
	Instances int `json:"instances"`
	// Policy is "least-loaded" (default), "weighted" or "round-robin".
	Policy string `json:"policy,omitempty"`
	// Warmup and Hysteresis tune the router's churn guards; zero means
	// the cluster package defaults.
	Warmup     int     `json:"warmup,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// DrainAt, when positive, drains DrainInstance at that virtual time:
	// placement stops there immediately and its pinned flows migrate to
	// the rest of the fleet.
	DrainAt       float64 `json:"drain_at,omitempty"`
	DrainInstance int     `json:"drain_instance,omitempty"`
}

// Arm is one point of the varied variable: an admission policy plus the
// degraded-mode fallback it serves under.
type Arm struct {
	Name string `json:"name"`
	// Policy is "certainty-equivalent", "perfect-knowledge", "peak-rate"
	// or "measured-sum".
	Policy string `json:"policy"`
	// Peak is the peak-rate policy's per-flow peak (default: the model's
	// declared peak).
	Peak float64 `json:"peak,omitempty"`
	// Eta is the measured-sum utilization target (required for that
	// policy).
	Eta float64 `json:"eta,omitempty"`
	// Degraded is the gateway's degraded policy for this arm: "freeze"
	// (default), "peak-rate" or "reject-all".
	Degraded string `json:"degraded,omitempty"`

	// Estimator, Memory and Adaptive override the shared gateway's
	// measurement configuration for this arm only, so a scenario can race
	// a fixed-memory estimator against the adaptive controller on the same
	// workload. Empty/zero/nil means "inherit".
	Estimator string  `json:"estimator,omitempty"`
	Memory    float64 `json:"memory,omitempty"`
	Adaptive  *bool   `json:"adaptive,omitempty"`
}

// FaultWindow is the JSON form of fault.Window: a fault mode ("nan",
// "inf", "notok", "drop") over [From, To) virtual time.
type FaultWindow struct {
	Mode string  `json:"mode"`
	From float64 `json:"from"`
	To   float64 `json:"to"`
}

// Hypothesis is the typed grading rule. Exactly the variant named by Kind
// must be present.
type Hypothesis struct {
	Kind      HypothesisKind `json:"kind"`
	Dominance *Dominance     `json:"dominance,omitempty"`
	Interval  *Interval      `json:"interval,omitempty"`
	Invariant *Invariant     `json:"invariant,omitempty"`
}

// Dominance: on every seed, arm A's metric must relate to arm B's
// (strictly) and by at least MinRatio (default 1).
type Dominance struct {
	Metric   Metric   `json:"metric"`
	A        string   `json:"a"`
	B        string   `json:"b"`
	Relation Relation `json:"relation"`
	MinRatio float64  `json:"min_ratio,omitempty"`
}

// Interval grades each cell's windowed overflow estimate against a
// reference level.
type Interval struct {
	// Reference is "sqrt2-law" (Q(alpha_q/sqrt2) for the configured p_q),
	// "pq" (the target itself), "masking" (eq. 41's (SVR*alpha_q + 1)*p_q
	// from the churn workload's flow-rate marginal) or "value" (explicit
	// Value).
	Reference string       `json:"reference"`
	Value     float64      `json:"value,omitempty"`
	Mode      IntervalMode `json:"mode"`
	// Z is the Wilson quantile (default 1.96).
	Z float64 `json:"z,omitempty"`
	// QoSVerdict, when set, additionally requires the qos.Audit verdict of
	// every cell to equal it ("ok", "violates-target", ...).
	QoSVerdict string `json:"qos_verdict,omitempty"`
	// GradeAfter, when positive, excludes ticks before that virtual time
	// from the graded overflow audit: the cell's p_f interval covers only
	// the steady state after a warmup (or after a mid-run model shift),
	// not the transient. Requires a churn workload.
	GradeAfter float64 `json:"grade_after,omitempty"`
}

// Invariant asserts each named predicate over every cell.
type Invariant struct {
	Checks []InvariantKind `json:"checks,omitempty"`
	// Bounds additionally pin per-cell scalars: on every cell, each named
	// metric must be positive (so the bound cannot pass vacuously on a
	// substrate that never produces it) and at most the ceiling.
	Bounds []MetricBound `json:"bounds,omitempty"`
}

// MetricBound is one per-cell metric ceiling an invariant hypothesis pins.
type MetricBound struct {
	Metric Metric  `json:"metric"`
	AtMost float64 `json:"at_most"`
}

// Targets.
const (
	TargetInProcess = "in-process"
	TargetNetwork   = "network"
)

// Workload kinds.
const (
	WorkloadImpulsive = "impulsive"
	WorkloadChurn     = "churn"
)

// finite rejects NaN and Inf with a positional error.
func finite(path string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("scenario: %s: %g is not finite", path, v)
	}
	return nil
}

// positive additionally requires v > 0.
func positive(path string, v float64) error {
	if err := finite(path, v); err != nil {
		return err
	}
	if v <= 0 {
		return fmt.Errorf("scenario: %s: %g must be positive", path, v)
	}
	return nil
}

// Parse decodes a scenario config strictly and validates it. Defaults are
// filled in (idempotently), so Marshal of the result re-parses to the same
// value.
func Parse(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A second document in the stream is a malformed scenario, not data to
	// ignore.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after config document")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Load reads and parses one scenario file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks every field, rejecting non-finite rates and unknown
// names with positional errors, and fills defaults in place. It is
// idempotent.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if len(c.Seeds) == 0 {
		// Positional, like every other field error: an empty replication
		// axis would make every hypothesis grade vacuously.
		return fmt.Errorf("scenario: seeds: at least one seed is required")
	}
	seen := map[uint64]bool{}
	for i, s := range c.Seeds {
		if seen[s] {
			return fmt.Errorf("scenario: seeds[%d]: duplicate seed %d", i, s)
		}
		seen[s] = true
	}
	if c.Target == "" {
		c.Target = TargetInProcess
	}
	if c.Target != TargetInProcess && c.Target != TargetNetwork {
		return fmt.Errorf("scenario: target: unknown substrate %q (want %s or %s)", c.Target, TargetInProcess, TargetNetwork)
	}
	if err := c.Workload.validate(); err != nil {
		return err
	}
	if c.Target == TargetNetwork && c.Workload.Kind != WorkloadChurn {
		return fmt.Errorf("scenario: target: the network substrate requires a churn workload")
	}
	if err := c.Gateway.validate(); err != nil {
		return err
	}
	if len(c.Arms) == 0 {
		return fmt.Errorf("scenario: arms: at least one arm is required")
	}
	armNames := map[string]bool{}
	for i := range c.Arms {
		path := fmt.Sprintf("arms[%d]", i)
		if err := c.Arms[i].validate(path); err != nil {
			return err
		}
		if armNames[c.Arms[i].Name] {
			return fmt.Errorf("scenario: %s: duplicate arm name %q", path, c.Arms[i].Name)
		}
		armNames[c.Arms[i].Name] = true
		// The arm's effective measurement spec must stand on its own:
		// overrides merge before validation, so a memory override on an
		// inherited window estimator is checked against window's rules.
		eff := c.effectiveGateway(c.Arms[i])
		if c.Arms[i].Estimator != "" || c.Arms[i].Memory != 0 {
			if err := validateEstimatorSpec(path, eff.Estimator, eff.Memory); err != nil {
				return err
			}
		}
		if eff.Adaptive {
			if c.Workload.Kind != WorkloadChurn {
				return fmt.Errorf("scenario: %s: adaptive measurement requires a churn workload", path)
			}
			switch eff.Estimator {
			case "exponential", "window", "aggregate":
			default:
				return fmt.Errorf("scenario: %s: adaptive measurement requires a retunable estimator (exponential, window or aggregate), not %q", path, eff.Estimator)
			}
		}
	}
	if c.Gateway.Th != 0 {
		adaptiveSomewhere := c.Gateway.Adaptive
		for i := range c.Arms {
			if c.effectiveGateway(c.Arms[i]).Adaptive {
				adaptiveSomewhere = true
			}
		}
		if !adaptiveSomewhere {
			return fmt.Errorf("scenario: gateway.th: only valid with adaptive measurement on the gateway or an arm")
		}
	}
	if len(c.Faults) > 0 {
		if c.Workload.Kind != WorkloadChurn {
			return fmt.Errorf("scenario: faults: fault windows require a churn workload")
		}
		ws := make([]fault.Window, len(c.Faults))
		for i, f := range c.Faults {
			m, err := fault.ParseMode(f.Mode)
			if err != nil {
				return fmt.Errorf("scenario: faults[%d]: %w", i, err)
			}
			ws[i] = fault.Window{Mode: m, From: f.From, To: f.To}
		}
		if err := fault.ValidateWindows(ws); err != nil {
			return fmt.Errorf("scenario: faults: %w", err)
		}
	}
	if c.Cluster != nil {
		if err := c.Cluster.validate(c); err != nil {
			return err
		}
	}
	return c.Check.validate(c)
}

func (s *ClusterSpec) validate(c *Config) error {
	if s.Instances < 2 {
		return fmt.Errorf("scenario: cluster.instances: %d must be at least 2 (a cluster of one is the plain churn cell)", s.Instances)
	}
	if c.Workload.Kind != WorkloadChurn {
		return fmt.Errorf("scenario: cluster: a cluster topology requires a churn workload")
	}
	if c.Target != TargetInProcess {
		return fmt.Errorf("scenario: cluster: a cluster topology requires the in-process target")
	}
	if len(c.Faults) > 0 {
		return fmt.Errorf("scenario: cluster: estimator fault windows are not supported with a cluster topology")
	}
	if s.Policy == "" {
		s.Policy = cluster.PlaceLeastLoaded.String()
	}
	if _, err := cluster.ParsePlacementPolicy(s.Policy); err != nil {
		return fmt.Errorf("scenario: cluster.policy: %w", err)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("scenario: cluster.warmup: %d must be non-negative", s.Warmup)
	}
	if err := finite("cluster.hysteresis", s.Hysteresis); err != nil {
		return err
	}
	if s.Hysteresis < 0 {
		return fmt.Errorf("scenario: cluster.hysteresis: %g must be non-negative", s.Hysteresis)
	}
	if err := finite("cluster.drain_at", s.DrainAt); err != nil {
		return err
	}
	if s.DrainAt < 0 {
		return fmt.Errorf("scenario: cluster.drain_at: %g must be non-negative", s.DrainAt)
	}
	if s.DrainAt > 0 && s.DrainAt >= c.Workload.Duration {
		return fmt.Errorf("scenario: cluster.drain_at: %g must fall inside the schedule (duration %g)", s.DrainAt, c.Workload.Duration)
	}
	if s.DrainInstance < 0 || s.DrainInstance >= s.Instances {
		return fmt.Errorf("scenario: cluster.drain_instance: %d out of range [0, %d)", s.DrainInstance, s.Instances)
	}
	return nil
}

func (w *Workload) validate() error {
	switch w.Kind {
	case WorkloadImpulsive:
		if w.Replications <= 0 {
			return fmt.Errorf("scenario: workload.replications: %d must be positive for an impulsive workload", w.Replications)
		}
		if err := positive("workload.svr", w.SVR); err != nil {
			return err
		}
		if w.Lambda != 0 || w.Hold != 0 || w.Duration != 0 || w.Model != nil || w.Crowd != nil || w.Clients != nil || w.Shift != nil || w.Renegotiate {
			return fmt.Errorf("scenario: workload: churn fields (lambda/hold/duration/model/crowd/clients/shift/renegotiate) are not valid for an impulsive workload")
		}
	case WorkloadChurn:
		if err := positive("workload.lambda", w.Lambda); err != nil {
			return err
		}
		if err := positive("workload.hold", w.Hold); err != nil {
			return err
		}
		if err := positive("workload.duration", w.Duration); err != nil {
			return err
		}
		if w.Tick == 0 {
			w.Tick = 0.5
		}
		if err := positive("workload.tick", w.Tick); err != nil {
			return err
		}
		if err := finite("workload.arrival_cv", w.ArrivalCV); err != nil {
			return err
		}
		if w.ArrivalCV < 0 {
			return fmt.Errorf("scenario: workload.arrival_cv: %g must be non-negative", w.ArrivalCV)
		}
		if w.Model != nil {
			if err := w.Model.validate("workload.model"); err != nil {
				return err
			}
			if w.SVR != 0 || w.TC != 0 {
				return fmt.Errorf("scenario: workload: svr/tc and an explicit model are mutually exclusive")
			}
		} else {
			if err := positive("workload.svr", w.SVR); err != nil {
				return err
			}
			if w.TC == 0 {
				w.TC = 1
			}
			if err := positive("workload.tc", w.TC); err != nil {
				return err
			}
		}
		if w.Crowd != nil {
			if err := finite("workload.crowd.factor", w.Crowd.Factor); err != nil {
				return err
			}
			if w.Crowd.Factor < 1 {
				return fmt.Errorf("scenario: workload.crowd.factor: %g must be >= 1", w.Crowd.Factor)
			}
			if err := finite("workload.crowd.from", w.Crowd.From); err != nil {
				return err
			}
			if err := finite("workload.crowd.to", w.Crowd.To); err != nil {
				return err
			}
			if !(w.Crowd.To > w.Crowd.From) {
				return fmt.Errorf("scenario: workload.crowd: window [%g, %g) is empty", w.Crowd.From, w.Crowd.To)
			}
		}
		if w.Clients != nil {
			plan := fault.ClientPlan{LeakP: w.Clients.LeakP, Lie: w.Clients.Lie}
			if plan.Lie == 0 {
				plan.Lie = 1
			}
			if err := plan.Validate(); err != nil {
				return fmt.Errorf("scenario: workload.clients: %w", err)
			}
		}
		if w.Shift != nil {
			if err := positive("workload.shift.at", w.Shift.At); err != nil {
				return err
			}
			if w.Shift.At >= w.Duration {
				return fmt.Errorf("scenario: workload.shift.at: %g must fall inside the schedule (duration %g)", w.Shift.At, w.Duration)
			}
			if err := w.Shift.Model.validate("workload.shift.model"); err != nil {
				return err
			}
		}
		if w.Replications != 0 {
			return fmt.Errorf("scenario: workload.replications: only valid for an impulsive workload")
		}
	case "":
		return fmt.Errorf("scenario: workload.kind is required (want %s or %s)", WorkloadImpulsive, WorkloadChurn)
	default:
		return fmt.Errorf("scenario: workload.kind: unknown kind %q (want %s or %s)", w.Kind, WorkloadImpulsive, WorkloadChurn)
	}
	return nil
}

func (m *ModelSpec) validate(path string) error {
	switch m.Kind {
	case "rcbr":
		if m.Mu == 0 {
			m.Mu = 1
		}
		if err := positive(path+".mu", m.Mu); err != nil {
			return err
		}
		if err := positive(path+".svr", m.SVR); err != nil {
			return err
		}
		if m.TC == 0 {
			m.TC = 1
		}
		if err := positive(path+".tc", m.TC); err != nil {
			return err
		}
	case "onoff":
		if err := positive(path+".peak", m.Peak); err != nil {
			return err
		}
		if err := positive(path+".on_time", m.OnTime); err != nil {
			return err
		}
		if err := positive(path+".off_time", m.OffTime); err != nil {
			return err
		}
	case "constant":
		if err := positive(path+".rate", m.Rate); err != nil {
			return err
		}
	case "mixture":
		if len(m.Mix) < 2 {
			return fmt.Errorf("scenario: %s.mix: a mixture needs at least two components", path)
		}
		for i := range m.Mix {
			p := fmt.Sprintf("%s.mix[%d]", path, i)
			if err := positive(p+".weight", m.Mix[i].Weight); err != nil {
				return err
			}
			if m.Mix[i].Model.Kind == "mixture" {
				return fmt.Errorf("scenario: %s.model: mixtures do not nest", p)
			}
			if err := m.Mix[i].Model.validate(p + ".model"); err != nil {
				return err
			}
		}
	case "":
		return fmt.Errorf("scenario: %s.kind is required", path)
	default:
		return fmt.Errorf("scenario: %s.kind: unknown model %q (want rcbr, onoff, constant or mixture)", path, m.Kind)
	}
	return nil
}

func (g *Gateway) validate() error {
	if err := positive("gateway.capacity", g.Capacity); err != nil {
		return err
	}
	if err := positive("gateway.pq", g.PQ); err != nil {
		return err
	}
	if g.PQ >= 0.5 {
		return fmt.Errorf("scenario: gateway.pq: %g must be below 0.5", g.PQ)
	}
	if g.Estimator == "" {
		g.Estimator = "memoryless"
	}
	if err := validateEstimatorSpec("gateway", g.Estimator, g.Memory); err != nil {
		return err
	}
	if err := finite("gateway.th", g.Th); err != nil {
		return err
	}
	if g.Th < 0 {
		return fmt.Errorf("scenario: gateway.th: %g must be non-negative", g.Th)
	}
	if err := finite("gateway.flow_ttl", g.FlowTTL); err != nil {
		return err
	}
	if g.FlowTTL < 0 {
		return fmt.Errorf("scenario: gateway.flow_ttl: %g must be non-negative", g.FlowTTL)
	}
	if g.StaleAfter < 0 {
		return fmt.Errorf("scenario: gateway.stale_after: %d must be non-negative", g.StaleAfter)
	}
	if g.OverflowWindow < 0 {
		return fmt.Errorf("scenario: gateway.overflow_window: %d must be non-negative", g.OverflowWindow)
	}
	return nil
}

// validateEstimatorSpec checks one (estimator, memory) pair; path anchors
// the error ("gateway" or "arms[i]"). The aggregate estimator accepts
// memory 0 (a memoryless aggregate mean) because the adaptive controller
// supplies the time-scale online.
func validateEstimatorSpec(path, est string, memory float64) error {
	switch est {
	case "memoryless", "oracle":
		if memory != 0 {
			return fmt.Errorf("scenario: %s.memory: not valid for the %s estimator", path, est)
		}
	case "exponential", "window":
		if err := positive(path+".memory", memory); err != nil {
			return err
		}
	case "aggregate":
		if err := finite(path+".memory", memory); err != nil {
			return err
		}
		if memory < 0 {
			return fmt.Errorf("scenario: %s.memory: %g must be non-negative", path, memory)
		}
	default:
		return fmt.Errorf("scenario: %s.estimator: unknown estimator %q (want memoryless, exponential, window, aggregate or oracle)", path, est)
	}
	return nil
}

// effectiveGateway resolves the measurement configuration one arm's cell
// runs under: the shared gateway spec with the arm's estimator/memory/
// adaptive overrides applied. An arm that overrides the estimator kind
// starts from memory 0 unless it sets its own, so a "window 5" base can
// be raced against an "aggregate" arm without inheriting a nonsense W.
func (c *Config) effectiveGateway(arm Arm) Gateway {
	g := c.Gateway
	if arm.Estimator != "" {
		g.Estimator = arm.Estimator
		g.Memory = 0
	}
	if arm.Memory != 0 {
		g.Memory = arm.Memory
	}
	if arm.Adaptive != nil {
		g.Adaptive = *arm.Adaptive
	}
	return g
}

func (a *Arm) validate(path string) error {
	if a.Name == "" {
		return fmt.Errorf("scenario: %s.name is required", path)
	}
	switch a.Policy {
	case "certainty-equivalent", "perfect-knowledge":
	case "peak-rate":
		if a.Peak != 0 {
			if err := positive(path+".peak", a.Peak); err != nil {
				return err
			}
		}
	case "measured-sum":
		if err := positive(path+".eta", a.Eta); err != nil {
			return err
		}
		if a.Eta > 1 {
			return fmt.Errorf("scenario: %s.eta: %g must be in (0, 1]", path, a.Eta)
		}
	case "":
		return fmt.Errorf("scenario: %s.policy is required", path)
	default:
		return fmt.Errorf("scenario: %s.policy: unknown policy %q (want certainty-equivalent, perfect-knowledge, peak-rate or measured-sum)", path, a.Policy)
	}
	switch a.Degraded {
	case "", "freeze", "peak-rate", "reject-all":
	default:
		return fmt.Errorf("scenario: %s.degraded: unknown degraded policy %q (want freeze, peak-rate or reject-all)", path, a.Degraded)
	}
	return nil
}

func (h *Hypothesis) validate(c *Config) error {
	variants := 0
	for _, set := range []bool{h.Dominance != nil, h.Interval != nil, h.Invariant != nil} {
		if set {
			variants++
		}
	}
	if variants != 1 {
		return fmt.Errorf("scenario: check: exactly one of dominance, interval or invariant must be set")
	}
	switch h.Kind {
	case HypDominance:
		d := h.Dominance
		if d == nil {
			return fmt.Errorf("scenario: check.dominance is required for kind dominance")
		}
		if len(c.Arms) < 2 {
			return fmt.Errorf("scenario: check.dominance: needs at least two arms")
		}
		if !hasArm(c.Arms, d.A) {
			return fmt.Errorf("scenario: check.dominance.a: unknown arm %q", d.A)
		}
		if !hasArm(c.Arms, d.B) {
			return fmt.Errorf("scenario: check.dominance.b: unknown arm %q", d.B)
		}
		if d.A == d.B {
			return fmt.Errorf("scenario: check.dominance: arms a and b must differ")
		}
		if d.MinRatio == 0 {
			d.MinRatio = 1
		}
		if err := positive("check.dominance.min_ratio", d.MinRatio); err != nil {
			return err
		}
	case HypInterval:
		iv := h.Interval
		if iv == nil {
			return fmt.Errorf("scenario: check.interval is required for kind interval")
		}
		switch iv.Reference {
		case "sqrt2-law", "pq":
			if iv.Value != 0 {
				return fmt.Errorf("scenario: check.interval.value: only valid with reference \"value\"")
			}
		case "masking":
			// Eq. 41's masking-regime prediction (SVR*alpha_q + 1) * p_q,
			// computed from the churn workload's flow-rate marginal.
			if iv.Value != 0 {
				return fmt.Errorf("scenario: check.interval.value: only valid with reference \"value\"")
			}
			if c.Workload.Kind != WorkloadChurn {
				return fmt.Errorf("scenario: check.interval.reference: the masking reference requires a churn workload")
			}
		case "value":
			if err := positive("check.interval.value", iv.Value); err != nil {
				return err
			}
		case "":
			return fmt.Errorf("scenario: check.interval.reference is required (want sqrt2-law, pq, masking or value)")
		default:
			return fmt.Errorf("scenario: check.interval.reference: unknown reference %q (want sqrt2-law, pq, masking or value)", iv.Reference)
		}
		if iv.Z == 0 {
			iv.Z = 1.96
		}
		if err := positive("check.interval.z", iv.Z); err != nil {
			return err
		}
		if iv.QoSVerdict != "" {
			if _, err := qos.ParseVerdict(iv.QoSVerdict); err != nil {
				return fmt.Errorf("scenario: check.interval.qos_verdict: %w", err)
			}
		}
		if iv.GradeAfter != 0 {
			if err := positive("check.interval.grade_after", iv.GradeAfter); err != nil {
				return err
			}
			if c.Workload.Kind != WorkloadChurn {
				return fmt.Errorf("scenario: check.interval.grade_after: requires a churn workload")
			}
			if iv.GradeAfter >= c.Workload.Duration {
				return fmt.Errorf("scenario: check.interval.grade_after: %g must fall inside the schedule (duration %g)", iv.GradeAfter, c.Workload.Duration)
			}
		}
	case HypInvariant:
		inv := h.Invariant
		if inv == nil {
			return fmt.Errorf("scenario: check.invariant is required for kind invariant")
		}
		if len(inv.Checks) == 0 && len(inv.Bounds) == 0 {
			return fmt.Errorf("scenario: check.invariant: at least one check or bound is required")
		}
		for i, k := range inv.Checks {
			if k < InvLifecycle || k > InvMigratedFlows {
				return fmt.Errorf("scenario: check.invariant.checks[%d]: unknown invariant %d", i, int(k))
			}
			if k == InvSubstrateIdentity && c.Target != TargetNetwork {
				return fmt.Errorf("scenario: check.invariant.checks[%d]: substrate-identity requires the network target", i)
			}
			if k == InvMigratedFlows && c.Cluster == nil {
				return fmt.Errorf("scenario: check.invariant.checks[%d]: migrated-flows requires a cluster topology", i)
			}
		}
		for i, b := range inv.Bounds {
			if b.Metric < MetricAdmitted || b.Metric > MetricServedP99 {
				return fmt.Errorf("scenario: check.invariant.bounds[%d].metric: unknown metric %d", i, int(b.Metric))
			}
			if err := positive(fmt.Sprintf("check.invariant.bounds[%d].at_most", i), b.AtMost); err != nil {
				return err
			}
			if (b.Metric == MetricServedP50 || b.Metric == MetricServedP99) && c.Target != TargetNetwork {
				return fmt.Errorf("scenario: check.invariant.bounds[%d].metric: %s requires the network target", i, b.Metric)
			}
		}
	default:
		return fmt.Errorf("scenario: check.kind: unknown hypothesis kind %d", int(h.Kind))
	}
	return nil
}

func hasArm(arms []Arm, name string) bool {
	for _, a := range arms {
		if a.Name == name {
			return true
		}
	}
	return false
}

// FaultSchedule converts the config's fault windows to the fault package's
// form. Validate must have accepted the config first.
func (c *Config) FaultSchedule() []fault.Window {
	if len(c.Faults) == 0 {
		return nil
	}
	ws := make([]fault.Window, len(c.Faults))
	for i, f := range c.Faults {
		m, _ := fault.ParseMode(f.Mode)
		ws[i] = fault.Window{Mode: m, From: f.From, To: f.To}
	}
	return ws
}
