//go:build scenario

package scenario

import (
	"context"
	"path/filepath"
	"testing"
)

// TestScenarioSuite is the `make test-scenario` tier: every built-in
// scenario under scenarios/ must grade to its declared expected verdict.
// The suite includes the two impulsive sqrt2-law ensembles (the slow
// cells, around a minute together on one core), which is why this lives
// behind the "scenario" build tag rather than in tier-1; the fast
// scenarios also run in tier-1 through the golden and network-twin tests.
func TestScenarioSuite(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("expected at least 8 built-in scenarios, found %d", len(paths))
	}
	for _, path := range paths {
		path := path
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			cfg, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != cfg.Expect {
				t.Errorf("verdict %s, expected %s; notes:", res.Verdict, cfg.Expect)
				for _, n := range res.Notes {
					t.Logf("  %s", n)
				}
			}
		})
	}
}
