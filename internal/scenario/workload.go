package scenario

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/fault"
	gw "repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/qos"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// CellResult is one point of the seed x arm matrix: the final gateway
// state, the windowed overflow estimate with its qos verdict, and the
// derived scalars the hypotheses grade.
type CellResult struct {
	Seed uint64 `json:"seed"`
	Arm  string `json:"arm"`

	Stats    gw.Stats               `json:"stats"`
	Overflow stats.WindowedEstimate `json:"overflow"`
	QoS      qos.Verdict            `json:"qos"`

	// StormAdmitted counts admissions granted while the gateway served
	// under its degraded policy; DegradedTicks counts ticks spent there.
	StormAdmitted int64 `json:"storm_admitted"`
	DegradedTicks int64 `json:"degraded_ticks"`
	// UtilMean is the mean of AggregateRate/Capacity over ticks (churn).
	UtilMean float64 `json:"util_mean"`

	// ServedP50/ServedP99 are the serving layer's per-decision latency
	// percentiles in seconds (network target only; 0 in-process). They are
	// wall-clock measurements — the one non-deterministic part of a cell —
	// so byte-exact golden scenarios must not run the network target.
	ServedP50 float64 `json:"served_p50,omitempty"`
	ServedP99 float64 `json:"served_p99,omitempty"`

	// Instances is the fleet size and Migrations the flows moved off
	// draining instances (cluster topology only). With a cluster, Stats
	// is the fleet sum and Overflow/QoS grade the worst instance's audit.
	Instances  int   `json:"instances,omitempty"`
	Migrations int64 `json:"migrations,omitempty"`

	// Adaptive is the time-scale controller's final snapshot when this
	// cell's arm ran with adaptive measurement (instance 0's controller
	// under a cluster topology).
	Adaptive *adaptive.Snapshot `json:"adaptive,omitempty"`

	// Replay is the driver-side decision accounting (churn only).
	Replay loadgen.Stats `json:"replay"`
	// Reps is the ensemble size (impulsive only).
	Reps int `json:"reps,omitempty"`
	// NetMatched reports whether the in-process twin reproduced the
	// network run exactly (network target only).
	NetMatched bool `json:"net_matched,omitempty"`
}

// Metric extracts the named per-cell scalar.
func (c CellResult) Metric(m Metric) float64 {
	switch m {
	case MetricAdmitted:
		return float64(c.Stats.Admitted)
	case MetricRejected:
		return float64(c.Stats.Rejected)
	case MetricExpired:
		return float64(c.Stats.Expired)
	case MetricStormAdmitted:
		return float64(c.StormAdmitted)
	case MetricDegradedTicks:
		return float64(c.DegradedTicks)
	case MetricUtilization:
		return c.UtilMean
	case MetricServedP50:
		return c.ServedP50
	case MetricServedP99:
		return c.ServedP99
	}
	return 0
}

// buildModel returns the workload's flow-rate model.
func buildModel(w *Workload) (traffic.Model, error) {
	if w.Model == nil {
		return traffic.NewRCBR(1, w.SVR, w.TC), nil
	}
	return w.Model.build()
}

func (m *ModelSpec) build() (traffic.Model, error) {
	switch m.Kind {
	case "rcbr":
		return traffic.NewRCBR(m.Mu, m.SVR, m.TC), nil
	case "onoff":
		return traffic.OnOff{PeakRate: m.Peak, OnTime: m.OnTime, OffTime: m.OffTime}, nil
	case "constant":
		return traffic.Constant{Rate: m.Rate}, nil
	case "mixture":
		models := make([]traffic.Model, len(m.Mix))
		weights := make([]float64, len(m.Mix))
		for i := range m.Mix {
			sub, err := m.Mix[i].Model.build()
			if err != nil {
				return nil, err
			}
			models[i] = sub
			weights[i] = m.Mix[i].Weight
		}
		return traffic.NewMixture(models, weights)
	}
	return nil, fmt.Errorf("scenario: unknown model kind %q", m.Kind)
}

// buildController instantiates one arm's admission policy against the
// declared (model) statistics — the controlled variable every arm shares.
func buildController(arm Arm, g Gateway, ts traffic.Stats) (core.Controller, error) {
	switch arm.Policy {
	case "certainty-equivalent":
		return core.NewCertaintyEquivalent(g.PQ, ts.Mean, ts.StdDev())
	case "perfect-knowledge":
		return core.NewPerfectKnowledge(g.Capacity, ts.Mean, ts.StdDev(), g.PQ)
	case "peak-rate":
		peak := arm.Peak
		if peak == 0 {
			peak = ts.Peak
		}
		if peak <= 0 {
			return nil, fmt.Errorf("scenario: arm %q: peak-rate needs an explicit peak (the model declares none)", arm.Name)
		}
		return core.PeakRate{Peak: peak}, nil
	case "measured-sum":
		return core.NewMeasuredSum(arm.Eta, ts.Mean)
	}
	return nil, fmt.Errorf("scenario: arm %q: unknown policy %q", arm.Name, arm.Policy)
}

// buildEstimator instantiates the effective measurement spec. tick sizes
// the aggregate estimator's variance memory when no T_m is given (eight
// measurement periods, matching cmd/gateway's default).
func buildEstimator(g Gateway, ts traffic.Stats, tick float64) estimator.Estimator {
	switch g.Estimator {
	case "exponential":
		return estimator.NewExponential(g.Memory)
	case "window":
		return estimator.NewWindow(g.Memory)
	case "aggregate":
		tv := g.Memory
		if tv <= 0 {
			tv = 8 * tick
		}
		return estimator.NewAggregateOnly(g.Memory, tv)
	case "oracle":
		return &estimator.Oracle{Mu: ts.Mean, Sigma: ts.StdDev()}
	}
	return estimator.NewMemoryless()
}

// buildTuner instantiates the online time-scale controller for one arm's
// effective spec, or nil when the arm is not adaptive. Th defaults to the
// churn workload's mean holding time — the horizon the critical
// time-scale T~_h = Th/sqrt(n) scales down from.
func buildTuner(cfg *Config, spec Gateway) (*adaptive.Controller, error) {
	if !spec.Adaptive {
		return nil, nil
	}
	th := spec.Th
	if th == 0 {
		th = cfg.Workload.Hold
	}
	return adaptive.New(adaptive.Config{
		Capacity: spec.Capacity,
		Th:       th,
		PQ:       spec.PQ,
	})
}

// auditZ returns the Wilson quantile the scenario grades with.
func auditZ(cfg *Config) float64 {
	if cfg.Check.Interval != nil && cfg.Check.Interval.Z > 0 {
		return cfg.Check.Interval.Z
	}
	return 1.96
}

// gradeAfter returns the virtual time before which ticks are excluded
// from the graded overflow audit (0 = grade the whole run).
func gradeAfter(cfg *Config) float64 {
	if cfg.Check.Interval != nil {
		return cfg.Check.Interval.GradeAfter
	}
	return 0
}

// newCellGateway builds the gateway for one cell: deterministic latency
// clock, small shard count (cells are single-threaded), overflow window
// sized to hold the whole run. When the arm's effective spec is adaptive
// the returned controller is attached as the gateway's Tuner; callers
// snapshot it into the cell after the replay.
func newCellGateway(cfg *Config, arm Arm, ctrl core.Controller, est estimator.Estimator, overflowWindow int) (*gw.Gateway, *adaptive.Controller, error) {
	dp := gw.DegradedFreeze
	if arm.Degraded != "" {
		var err error
		dp, err = gw.ParseDegradedPolicy(arm.Degraded)
		if err != nil {
			return nil, nil, err
		}
	}
	tuner, err := buildTuner(cfg, cfg.effectiveGateway(arm))
	if err != nil {
		return nil, nil, err
	}
	var lat atomic.Int64
	gcfg := gw.Config{
		Capacity:       cfg.Gateway.Capacity,
		Controller:     ctrl,
		Estimator:      est,
		Shards:         4,
		EstimateRing:   1,
		LatencyClock:   func() int64 { return lat.Add(1) },
		OverflowWindow: overflowWindow,
		FlowTTL:        cfg.Gateway.FlowTTL,
		StaleAfter:     cfg.Gateway.StaleAfter,
		Degraded:       dp,
	}
	if tuner != nil {
		// Assign only a live controller: a typed-nil in the interface field
		// would pass the gateway's nil check and panic on the first tick.
		gcfg.Tuner = tuner
	}
	g, err := gw.New(gcfg)
	if err != nil {
		return nil, nil, err
	}
	return g, tuner, nil
}

// runCell executes one (seed, arm) cell of the matrix.
func runCell(ctx context.Context, cfg *Config, arm Arm, seed uint64) (CellResult, error) {
	if cfg.Workload.Kind == WorkloadImpulsive {
		return runImpulsiveCell(ctx, cfg, arm, seed)
	}
	if cfg.Cluster != nil {
		return runClusterCell(ctx, cfg, arm, seed)
	}
	return runChurnCell(ctx, cfg, arm, seed)
}

// runImpulsiveCell is the Prop 3.3 steady state: per replication, fill the
// gateway one flow at a time (a measurement tick after each) until the
// bound refuses one, then redraw every admitted flow's rate — the t >> T_c
// state where the load is independent of the admission-time fluctuation —
// and record whether the redrawn aggregate overflows. Replications fan out
// over the shared worker pool; indicators merge in replication order, so
// the cell is bit-identical for a fixed seed at any worker count.
func runImpulsiveCell(ctx context.Context, cfg *Config, arm Arm, seed uint64) (CellResult, error) {
	n := cfg.Gateway.Capacity
	svr := cfg.Workload.SVR
	model := traffic.NewRCBR(1, svr, 1)
	ts := model.Stats()

	type repOut struct {
		overflow bool
		admitted int64
	}
	pool := sim.Replicated{Replications: cfg.Workload.Replications, Seed: seed, Tag: 0x7363656e} // "scen"
	outs, err := sim.Collect(ctx, pool, func(rep int, r *rng.PCG) (repOut, error) {
		ctrl, err := buildController(arm, cfg.Gateway, ts)
		if err != nil {
			return repOut{}, err
		}
		g, _, err := newCellGateway(cfg, arm, ctrl, buildEstimator(cfg.effectiveGateway(arm), ts, 1e-3), 8)
		if err != nil {
			return repOut{}, err
		}
		admitted := 0
		for i := 0; ; i++ {
			rate := model.New(r.Split(uint64(i))).Next().Rate
			d, err := g.Admit(uint64(i), rate)
			if err != nil {
				return repOut{}, err
			}
			g.Tick(float64(i+1) * 1e-3)
			if !d.Admitted {
				admitted = i
				break
			}
			if i > int(4*n) {
				return repOut{}, fmt.Errorf("scenario: impulsive fill did not terminate at capacity %g", n)
			}
		}
		for j := 0; j < admitted; j++ {
			rate := model.New(r.Split(uint64(1)<<32 + uint64(j))).Next().Rate
			if err := g.UpdateRate(uint64(j), rate); err != nil {
				return repOut{}, err
			}
		}
		st := g.Tick(1e6) // well past T_c
		return repOut{overflow: st.AggregateRate > n, admitted: int64(admitted)}, nil
	})
	if err != nil {
		return CellResult{}, err
	}

	audit, err := qos.NewAudit(qos.AuditConfig{
		TargetPf: cfg.Gateway.PQ,
		Z:        auditZ(cfg),
		Window:   len(outs),
	})
	if err != nil {
		return CellResult{}, err
	}
	cell := CellResult{Seed: seed, Arm: arm.Name, Reps: len(outs)}
	for _, o := range outs {
		audit.Observe(o.overflow)
		cell.Stats.Admitted += o.admitted
		cell.Stats.Rejected++ // the fill stops at the first refusal
		cell.UtilMean += float64(o.admitted) / n / float64(len(outs))
	}
	cell.Stats.Active = cell.Stats.Admitted
	rep := audit.Report()
	cell.Overflow = rep.Estimate
	cell.QoS = rep.Verdict
	return cell, nil
}

// runChurnCell replays a loadgen schedule through the gateway (directly,
// or through client -> server -> gateway on loopback for the network
// target), driving measurement ticks, the fault schedule, and the
// overflow audit from the replay's tick hook, then drains extra ticks so
// leases expire and the final state is quiescent.
func runChurnCell(ctx context.Context, cfg *Config, arm Arm, seed uint64) (CellResult, error) {
	events, err := churnSchedule(cfg, seed)
	if err != nil {
		return CellResult{}, err
	}
	cell, st, err := replayChurn(ctx, cfg, arm, events, cfg.Target == TargetNetwork)
	if err != nil {
		return CellResult{}, err
	}
	cell.Seed = seed
	cell.Arm = arm.Name
	if cfg.Target == TargetNetwork {
		// The in-process twin replays the identical schedule; substrate
		// identity means both the driver-side decision accounting and the
		// final gateway state agree exactly.
		twin, twinSt, err := replayChurn(ctx, cfg, arm, events, false)
		if err != nil {
			return CellResult{}, err
		}
		cell.NetMatched = cell.Replay == twin.Replay && st == twinSt
	}
	cell.Stats = st
	return cell, nil
}

func churnSchedule(cfg *Config, seed uint64) ([]loadgen.Event, error) {
	w := cfg.Workload
	lcfg := loadgen.Config{
		Seed:        seed,
		Lambda:      w.Lambda,
		Hold:        w.Hold,
		SVR:         w.SVR,
		TC:          w.TC,
		Duration:    w.Duration,
		ArrivalCV:   w.ArrivalCV,
		Renegotiate: w.Renegotiate,
	}
	if w.Model != nil {
		m, err := w.Model.build()
		if err != nil {
			return nil, err
		}
		lcfg.Model = m
	}
	if w.Shift != nil {
		m, err := w.Shift.Model.build()
		if err != nil {
			return nil, err
		}
		lcfg.ShiftAt = w.Shift.At
		lcfg.ShiftModel = m
	}
	if w.Crowd != nil {
		lcfg.Crowd = loadgen.Crowd{Factor: w.Crowd.Factor, From: w.Crowd.From, To: w.Crowd.To}
	}
	if w.Clients != nil {
		lcfg.Plan = fault.ClientPlan{LeakP: w.Clients.LeakP, Lie: w.Clients.Lie}
		if lcfg.Plan.Lie == 0 {
			lcfg.Plan.Lie = 1
		}
	}
	return loadgen.Schedule(lcfg)
}

// replayChurn runs one substrate's replay of an already-built schedule and
// returns the cell accounting plus the final gateway stats.
func replayChurn(ctx context.Context, cfg *Config, arm Arm, events []loadgen.Event, network bool) (CellResult, gw.Stats, error) {
	w := cfg.Workload
	model, err := buildModel(&w)
	if err != nil {
		return CellResult{}, gw.Stats{}, err
	}
	ts := model.Stats()
	ctrl, err := buildController(arm, cfg.Gateway, ts)
	if err != nil {
		return CellResult{}, gw.Stats{}, err
	}
	est := buildEstimator(cfg.effectiveGateway(arm), ts, w.Tick)
	windows := cfg.FaultSchedule()
	var faulty *fault.Estimator
	if len(windows) > 0 {
		faulty = fault.Wrap(est)
		est = faulty
	}

	// Drain past the schedule so leases expire and every lifecycle closes.
	drain := 2
	if ttl := cfg.Gateway.FlowTTL; ttl > 0 {
		drain += int(ttl/w.Tick) + 1
	}
	totalTicks := int(w.Duration/w.Tick) + drain + 2
	overflowWindow := cfg.Gateway.OverflowWindow
	if overflowWindow == 0 {
		overflowWindow = totalTicks
	}
	g, tuner, err := newCellGateway(cfg, arm, ctrl, est, overflowWindow)
	if err != nil {
		return CellResult{}, gw.Stats{}, err
	}
	audit, err := qos.NewAudit(qos.AuditConfig{TargetPf: cfg.Gateway.PQ, Z: auditZ(cfg), Window: totalTicks})
	if err != nil {
		return CellResult{}, gw.Stats{}, err
	}

	var cell CellResult
	var prevAdmitted int64
	prevDegraded := false
	var utilN int64
	lastTick := 0.0
	gradeFrom := gradeAfter(cfg)
	tick := func(now float64) {
		lastTick = now
		if faulty != nil {
			faulty.SetMode(fault.ModeAt(windows, now))
		}
		st := g.Tick(now)
		if now >= gradeFrom {
			audit.ObserveWith(st.AggregateRate > cfg.Gateway.Capacity, st.Degraded)
		}
		if st.Degraded {
			cell.DegradedTicks++
		}
		// Admissions since the previous tick were decided under the policy
		// state published there.
		if prevDegraded {
			cell.StormAdmitted += st.Admitted - prevAdmitted
		}
		prevAdmitted = st.Admitted
		prevDegraded = st.Degraded
		cell.UtilMean += st.AggregateRate / cfg.Gateway.Capacity
		utilN++
	}

	const batch = 8
	var tgt loadgen.Target
	var shutdown func() error
	var srv *server.Server
	if network {
		srv, err = server.New(server.Config{Gateway: g})
		if err != nil {
			return CellResult{}, gw.Stats{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return CellResult{}, gw.Stats{}, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		cl, err := client.New(client.Config{Addr: ln.Addr().String()})
		if err != nil {
			return CellResult{}, gw.Stats{}, err
		}
		tgt = loadgen.ClientTarget{C: cl}
		shutdown = func() error {
			defer cl.Close()
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				return err
			}
			return <-done
		}
	} else {
		tgt = &loadgen.GatewayTarget{G: g}
	}

	rst, err := loadgen.Replay(ctx, tgt, events, batch, w.Tick, tick)
	if shutdown != nil {
		if serr := shutdown(); err == nil {
			err = serr
		}
	}
	if err != nil {
		return CellResult{}, gw.Stats{}, err
	}
	if srv != nil {
		// The serving-layer latency percentiles, read after the drained
		// shutdown so every decision is in the histogram.
		snap := srv.Snapshot()
		cell.ServedP50, cell.ServedP99 = snap.ServedP50, snap.ServedP99
	}
	// Drain from wherever the replay's tick loop stopped, never backwards.
	start := max(lastTick, w.Duration)
	for i := 1; i <= drain; i++ {
		tick(start + float64(i)*w.Tick)
	}
	if utilN > 0 {
		cell.UtilMean /= float64(utilN)
	}
	if tuner != nil {
		snap := tuner.Snapshot()
		cell.Adaptive = &snap
	}
	cell.Replay = rst
	rep := audit.Report()
	cell.Overflow = rep.Estimate
	cell.QoS = rep.Verdict
	return cell, g.Stats(), nil
}
