package scenario

import (
	"context"
	"sync/atomic"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	gw "repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/qos"
)

// runClusterCell replays a churn schedule against a fleet of identical
// gateway instances behind the headroom-scored router: arrivals route
// through placement and flow pinning, departures and rate updates follow
// the pins, and an optional mid-run drain migrates one instance's flows
// onto the rest of the fleet. Each instance keeps its own overflow audit;
// the cell's Overflow/QoS report the WORST instance (highest Wilson lower
// bound), so an interval hypothesis grades the per-instance claim — every
// member of the fleet must honor the bound, not the fleet on average.
// Stats is the fleet sum, which stays lifecycle-balanced across
// migrations because a migrated flow is admitted at its target before it
// departs its source.
//
// The replay is single-threaded and the drain walks flows in flow-ID
// order, so the cell — like every other — is deterministic in (seed, arm)
// and safe to lock into golden reports.
func runClusterCell(ctx context.Context, cfg *Config, arm Arm, seed uint64) (CellResult, error) {
	events, err := churnSchedule(cfg, seed)
	if err != nil {
		return CellResult{}, err
	}
	spec := cfg.Cluster
	w := cfg.Workload
	model, err := buildModel(&w)
	if err != nil {
		return CellResult{}, err
	}
	ts := model.Stats()
	dp := gw.DegradedFreeze
	if arm.Degraded != "" {
		if dp, err = gw.ParseDegradedPolicy(arm.Degraded); err != nil {
			return CellResult{}, err
		}
	}

	// Drain past the schedule so leases expire and every lifecycle closes.
	drain := 2
	if ttl := cfg.Gateway.FlowTTL; ttl > 0 {
		drain += int(ttl/w.Tick) + 1
	}
	totalTicks := int(w.Duration/w.Tick) + drain + 2
	overflowWindow := cfg.Gateway.OverflowWindow
	if overflowWindow == 0 {
		overflowWindow = totalTicks
	}

	policy, err := cluster.ParsePlacementPolicy(spec.Policy)
	if err != nil {
		return CellResult{}, err
	}
	ccfg := cluster.Config{
		Policy:     policy,
		Warmup:     spec.Warmup,
		Hysteresis: spec.Hysteresis,
	}
	// Each instance measures its own traffic, so each gets its own
	// time-scale controller when the arm is adaptive; the cell records
	// instance 0's snapshot.
	espec := cfg.effectiveGateway(arm)
	tuners := make([]*adaptive.Controller, 0, spec.Instances)
	for i := 0; i < spec.Instances; i++ {
		ctrl, err := buildController(arm, cfg.Gateway, ts)
		if err != nil {
			return CellResult{}, err
		}
		tuner, err := buildTuner(cfg, espec)
		if err != nil {
			return CellResult{}, err
		}
		tuners = append(tuners, tuner)
		lat := new(atomic.Int64) // per-instance deterministic latency clock
		icfg := gw.Config{
			Capacity:       cfg.Gateway.Capacity,
			Controller:     ctrl,
			Estimator:      buildEstimator(espec, ts, w.Tick),
			Shards:         4,
			EstimateRing:   1,
			LatencyClock:   func() int64 { return lat.Add(1) },
			OverflowWindow: overflowWindow,
			FlowTTL:        cfg.Gateway.FlowTTL,
			StaleAfter:     cfg.Gateway.StaleAfter,
			Degraded:       dp,
		}
		if tuner != nil {
			icfg.Tuner = tuner
		}
		ccfg.Instances = append(ccfg.Instances, icfg)
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return CellResult{}, err
	}
	audits := make([]*qos.Audit, spec.Instances)
	for i := range audits {
		if audits[i], err = qos.NewAudit(qos.AuditConfig{
			TargetPf: cfg.Gateway.PQ,
			Z:        auditZ(cfg),
			Window:   totalTicks,
		}); err != nil {
			return CellResult{}, err
		}
	}

	cell := CellResult{Seed: seed, Arm: arm.Name, Instances: spec.Instances}
	drained := false
	var utilN int64
	lastTick := 0.0
	fleetCap := cfg.Gateway.Capacity * float64(spec.Instances)
	gradeFrom := gradeAfter(cfg)
	tick := func(now float64) {
		lastTick = now
		if spec.DrainAt > 0 && !drained && now >= spec.DrainAt {
			// The scheduled failover: placement stops on the victim and
			// its pinned flows migrate. Stragglers the fleet has no
			// headroom for stay served on the draining instance.
			if _, _, err := cl.Drain(spec.DrainInstance); err == nil {
				drained = true
			}
		}
		anyDegraded := false
		var agg float64
		for i, st := range cl.Tick(now) {
			if now >= gradeFrom {
				audits[i].ObserveWith(st.AggregateRate > cfg.Gateway.Capacity, st.Degraded)
			}
			agg += st.AggregateRate
			anyDegraded = anyDegraded || st.Degraded
		}
		if anyDegraded {
			cell.DegradedTicks++
		}
		cell.UtilMean += agg / fleetCap
		utilN++
	}

	const batch = 8
	rst, err := loadgen.Replay(ctx, &cluster.ReplayTarget{C: cl}, events, batch, w.Tick, tick)
	if err != nil {
		return CellResult{}, err
	}
	// Drain from wherever the replay's tick loop stopped, never backwards.
	start := max(lastTick, w.Duration)
	for i := 1; i <= drain; i++ {
		tick(start + float64(i)*w.Tick)
	}
	if utilN > 0 {
		cell.UtilMean /= float64(utilN)
	}
	cell.Replay = rst
	cell.Stats = cl.Stats()
	cell.Migrations = cl.Snapshot().Migrations
	if tuners[0] != nil {
		snap := tuners[0].Snapshot()
		cell.Adaptive = &snap
	}

	worst := audits[0].Report()
	for _, a := range audits[1:] {
		if rep := a.Report(); rep.Estimate.Lo > worst.Estimate.Lo {
			worst = rep
		}
	}
	cell.Overflow = worst.Estimate
	cell.QoS = worst.Verdict
	return cell, nil
}
