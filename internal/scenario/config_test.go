package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// minimal returns a valid churn scenario that individual cases then break.
func minimal() string {
	return `{
		"name": "t", "seeds": [1],
		"workload": {"kind": "churn", "lambda": 1, "hold": 5, "duration": 10, "svr": 0.3},
		"gateway": {"capacity": 10, "pq": 0.01},
		"arms": [{"name": "a", "policy": "certainty-equivalent"}],
		"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}
	}`
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the positional error
	}{
		{"unknown-top-field", `{"name": "t", "bogus": 1}`, `"bogus"`},
		{"trailing-document", minimal() + `{}`, "trailing data"},
		{"nan-rate", strings.Replace(minimal(), `"lambda": 1`, `"lambda": NaN`, 1), "invalid character"},
		{"inf-via-exponent", strings.Replace(minimal(), `"lambda": 1`, `"lambda": 1e999`, 1), "workload.lambda"},
		{"negative-hold", strings.Replace(minimal(), `"hold": 5`, `"hold": -5`, 1), "workload.hold: -5 must be positive"},
		{"no-seeds", strings.Replace(minimal(), `"seeds": [1]`, `"seeds": []`, 1), "at least one seed"},
		{"dup-seeds", strings.Replace(minimal(), `"seeds": [1]`, `"seeds": [1, 1]`, 1), "seeds[1]: duplicate seed"},
		{"unknown-target", strings.Replace(minimal(), `"seeds": [1]`, `"seeds": [1], "target": "carrier-pigeon"`, 1), `unknown substrate "carrier-pigeon"`},
		{"unknown-policy", strings.Replace(minimal(), `"policy": "certainty-equivalent"`, `"policy": "vibes"`, 1), `arms[0].policy: unknown policy "vibes"`},
		{"unknown-estimator", strings.Replace(minimal(), `"pq": 0.01`, `"pq": 0.01, "estimator": "psychic"`, 1), `unknown estimator "psychic"`},
		{"unknown-verdict", strings.Replace(minimal(), `"name": "t"`, `"name": "t", "expect": "Shrug"`, 1), `"Shrug"`},
		{"unknown-fault-mode", strings.Replace(minimal(), `"seeds": [1]`, `"seeds": [1], "faults": [{"mode": "gremlins", "from": 1, "to": 2}]`, 1), "faults[0]"},
		{"impulsive-with-churn-fields", `{
			"name": "t", "seeds": [1],
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3, "lambda": 1},
			"gateway": {"capacity": 10, "pq": 0.01},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "invariant", "invariant": {"checks": ["lifecycle"]}}
		}`, "churn fields"},
		{"network-needs-churn", `{
			"name": "t", "seeds": [1], "target": "network",
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3},
			"gateway": {"capacity": 10, "pq": 0.01},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "invariant", "invariant": {"checks": ["lifecycle"]}}
		}`, "network substrate requires a churn workload"},
		{"two-hypotheses", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}, "invariant": {"checks": ["lifecycle"]}}`, 1),
			"exactly one of"},
		{"substrate-identity-in-process", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "invariant", "invariant": {"checks": ["substrate-identity"]}}`, 1),
			"substrate-identity requires the network target"},
		{"empty-invariant", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "invariant", "invariant": {}}`, 1),
			"at least one check or bound"},
		{"bound-nonpositive-ceiling", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "invariant", "invariant": {"bounds": [{"metric": "admitted", "at_most": 0}]}}`, 1),
			"bounds[0].at_most"},
		{"served-metric-in-process", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "invariant", "invariant": {"bounds": [{"metric": "served-p99", "at_most": 0.05}]}}`, 1),
			"served-p99 requires the network target"},
		{"nested-mixture", strings.Replace(minimal(),
			`"svr": 0.3`,
			`"model": {"kind": "mixture", "mix": [
				{"weight": 1, "model": {"kind": "mixture", "mix": []}},
				{"weight": 1, "model": {"kind": "constant", "rate": 1}}
			]}`, 1),
			"mixtures do not nest"},
		{"cluster-of-one", strings.Replace(minimal(),
			`"gateway": {"capacity": 10, "pq": 0.01}`,
			`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 1}`, 1),
			"cluster.instances: 1 must be at least 2"},
		{"cluster-unknown-policy", strings.Replace(minimal(),
			`"gateway": {"capacity": 10, "pq": 0.01}`,
			`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 3, "policy": "dartboard"}`, 1),
			"cluster.policy"},
		{"cluster-drain-outside-schedule", strings.Replace(minimal(),
			`"gateway": {"capacity": 10, "pq": 0.01}`,
			`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 3, "drain_at": 10}`, 1),
			"cluster.drain_at"},
		{"cluster-drain-instance-range", strings.Replace(minimal(),
			`"gateway": {"capacity": 10, "pq": 0.01}`,
			`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 3, "drain_at": 5, "drain_instance": 3}`, 1),
			"cluster.drain_instance: 3 out of range"},
		{"cluster-with-faults", strings.Replace(minimal(),
			`"gateway": {"capacity": 10, "pq": 0.01}`,
			`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 3}, "faults": [{"mode": "nan", "from": 1, "to": 2}]`, 1),
			"fault windows are not supported with a cluster topology"},
		{"migrated-flows-without-cluster", strings.Replace(minimal(),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "invariant", "invariant": {"checks": ["migrated-flows"]}}`, 1),
			"migrated-flows requires a cluster topology"},
		{"memoryless-with-memory", strings.Replace(minimal(),
			`"pq": 0.01`, `"pq": 0.01, "memory": 5`, 1),
			"gateway.memory: not valid for the memoryless estimator"},
		{"aggregate-negative-memory", strings.Replace(minimal(),
			`"pq": 0.01`, `"pq": 0.01, "estimator": "aggregate", "memory": -1`, 1),
			"gateway.memory: -1 must be non-negative"},
		{"th-without-adaptive", strings.Replace(minimal(),
			`"pq": 0.01`, `"pq": 0.01, "th": 5`, 1),
			"gateway.th: only valid with adaptive measurement"},
		{"adaptive-needs-retunable", strings.Replace(minimal(),
			`"pq": 0.01`, `"pq": 0.01, "adaptive": true`, 1),
			"adaptive measurement requires a retunable estimator"},
		{"adaptive-needs-churn", `{
			"name": "t", "seeds": [1],
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3},
			"gateway": {"capacity": 10, "pq": 0.01, "estimator": "aggregate", "adaptive": true},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "invariant", "invariant": {"checks": ["lifecycle"]}}
		}`, "adaptive measurement requires a churn workload"},
		{"arm-unknown-estimator", strings.Replace(minimal(),
			`"policy": "certainty-equivalent"`,
			`"policy": "certainty-equivalent", "estimator": "psychic"`, 1),
			`arms[0].estimator: unknown estimator "psychic"`},
		{"arm-memory-on-memoryless", strings.Replace(minimal(),
			`"policy": "certainty-equivalent"`,
			`"policy": "certainty-equivalent", "memory": 5`, 1),
			"arms[0].memory: not valid for the memoryless estimator"},
		{"shift-outside-schedule", strings.Replace(minimal(),
			`"svr": 0.3`,
			`"svr": 0.3, "shift": {"at": 20, "model": {"kind": "rcbr", "svr": 0.3}}`, 1),
			"workload.shift.at: 20 must fall inside the schedule"},
		{"shift-bad-model", strings.Replace(minimal(),
			`"svr": 0.3`,
			`"svr": 0.3, "shift": {"at": 5, "model": {"kind": "tarot"}}`, 1),
			`workload.shift.model.kind: unknown model "tarot"`},
		{"impulsive-with-shift", `{
			"name": "t", "seeds": [1],
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3,
				"shift": {"at": 5, "model": {"kind": "constant", "rate": 1}}},
			"gateway": {"capacity": 10, "pq": 0.01},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "invariant", "invariant": {"checks": ["lifecycle"]}}
		}`, "churn fields"},
		{"masking-needs-churn", `{
			"name": "t", "seeds": [1],
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3},
			"gateway": {"capacity": 10, "pq": 0.01},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "interval", "interval": {"reference": "masking", "mode": "covers"}}
		}`, "masking reference requires a churn workload"},
		{"masking-with-value", strings.Replace(minimal(),
			`{"reference": "pq", "mode": "at-most"}`,
			`{"reference": "masking", "mode": "covers", "value": 0.5}`, 1),
			`interval.value: only valid with reference "value"`},
		{"grade-after-outside-schedule", strings.Replace(minimal(),
			`{"reference": "pq", "mode": "at-most"}`,
			`{"reference": "pq", "mode": "at-most", "grade_after": 10}`, 1),
			"grade_after: 10 must fall inside the schedule"},
		{"grade-after-negative", strings.Replace(minimal(),
			`{"reference": "pq", "mode": "at-most"}`,
			`{"reference": "pq", "mode": "at-most", "grade_after": -1}`, 1),
			"check.interval.grade_after"},
		{"grade-after-needs-churn", `{
			"name": "t", "seeds": [1],
			"workload": {"kind": "impulsive", "replications": 10, "svr": 0.3},
			"gateway": {"capacity": 10, "pq": 0.01},
			"arms": [{"name": "a", "policy": "certainty-equivalent"}],
			"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most", "grade_after": 5}}
		}`, "grade_after: requires a churn workload"},
		{"dominance-unknown-arm", strings.Replace(strings.Replace(minimal(),
			`"arms": [{"name": "a", "policy": "certainty-equivalent"}]`,
			`"arms": [{"name": "a", "policy": "certainty-equivalent"}, {"name": "b", "policy": "peak-rate", "peak": 2}]`, 1),
			`"check": {"kind": "interval", "interval": {"reference": "pq", "mode": "at-most"}}`,
			`"check": {"kind": "dominance", "dominance": {"metric": "admitted", "a": "a", "b": "ghost", "relation": "greater"}}`, 1),
			`dominance.b: unknown arm "ghost"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseDefaultsIdempotent(t *testing.T) {
	cfg, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Target != TargetInProcess || cfg.Workload.Tick != 0.5 || cfg.Workload.TC != 1 ||
		cfg.Gateway.Estimator != "memoryless" || cfg.Check.Interval.Z != 1.96 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Marshal of the validated config re-parses to the identical value.
	out, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(out)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(cfg, again) {
		t.Fatalf("round-trip drift:\nfirst  %+v\nsecond %+v", cfg, again)
	}
}

// TestEffectiveGateway pins the arm-override merge: estimator overrides
// reset the inherited memory, memory overrides apply on top of whichever
// estimator is in effect, and adaptive toggles independently.
func TestEffectiveGateway(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"name": "t", "seeds": [1],
		"workload": {"kind": "churn", "lambda": 1, "hold": 5, "duration": 10, "svr": 0.3},
		"gateway": {"capacity": 10, "pq": 0.01, "estimator": "window", "memory": 5, "adaptive": true},
		"arms": [
			{"name": "inherit", "policy": "certainty-equivalent"},
			{"name": "fixed", "policy": "certainty-equivalent", "memory": 0.5, "adaptive": false},
			{"name": "agg", "policy": "certainty-equivalent", "estimator": "aggregate"}
		],
		"check": {"kind": "interval", "interval": {"reference": "masking", "mode": "covers"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	inherit := cfg.effectiveGateway(cfg.Arms[0])
	if inherit.Estimator != "window" || inherit.Memory != 5 || !inherit.Adaptive {
		t.Fatalf("inherit arm drifted from the base spec: %+v", inherit)
	}
	fixed := cfg.effectiveGateway(cfg.Arms[1])
	if fixed.Estimator != "window" || fixed.Memory != 0.5 || fixed.Adaptive {
		t.Fatalf("fixed arm overrides not applied: %+v", fixed)
	}
	agg := cfg.effectiveGateway(cfg.Arms[2])
	if agg.Estimator != "aggregate" || agg.Memory != 0 || !agg.Adaptive {
		t.Fatalf("estimator override must reset inherited memory: %+v", agg)
	}
}

// TestShippedScenariosParse locks the built-in suite to the strict decoder:
// every file under scenarios/ must load, and its marshaled form must
// re-parse to the same value.
func TestShippedScenariosParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("expected at least 8 built-in scenarios, found %d", len(paths))
	}
	for _, p := range paths {
		cfg, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Errorf("%s: marshal: %v", p, err)
			continue
		}
		again, err := Parse(out)
		if err != nil {
			t.Errorf("%s: round-trip parse: %v", p, err)
			continue
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Errorf("%s: round-trip drift", p)
		}
	}
}

// TestEnumRoundTrips complements cmd/vetenum: every enum value survives
// String -> Parse and JSON marshal -> unmarshal.
func TestEnumRoundTrips(t *testing.T) {
	for v := Inconclusive; v <= Refuted; v++ {
		got, err := ParseVerdict(v.String())
		if err != nil || got != v {
			t.Errorf("Verdict %d: %v %v", v, got, err)
		}
	}
	for k := HypDominance; k <= HypInvariant; k++ {
		got, err := ParseHypothesisKind(k.String())
		if err != nil || got != k {
			t.Errorf("HypothesisKind %d: %v %v", k, got, err)
		}
	}
	for k := InvLifecycle; k <= InvMigratedFlows; k++ {
		got, err := ParseInvariantKind(k.String())
		if err != nil || got != k {
			t.Errorf("InvariantKind %d: %v %v", k, got, err)
		}
	}
	for m := MetricAdmitted; m <= MetricServedP99; m++ {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("Metric %d: %v %v", m, got, err)
		}
	}
	for r := RelGreater; r <= RelLess; r++ {
		got, err := ParseRelation(r.String())
		if err != nil || got != r {
			t.Errorf("Relation %d: %v %v", r, got, err)
		}
	}
	for m := IntervalCovers; m <= IntervalAtLeast; m++ {
		got, err := ParseIntervalMode(m.String())
		if err != nil || got != m {
			t.Errorf("IntervalMode %d: %v %v", m, got, err)
		}
	}
	// JSON round-trip through a struct field (exercises Marshal/Unmarshal).
	var h Hypothesis
	h.Kind = HypInterval
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hypothesis
	if err := json.Unmarshal(data, &back); err != nil || back.Kind != HypInterval {
		t.Fatalf("Hypothesis kind JSON round-trip: %v %v", back.Kind, err)
	}
}

// FuzzScenarioConfig throws arbitrary bytes at the strict decoder: Parse
// must never panic, and any config it accepts must survive a
// marshal -> re-parse round trip unchanged (defaults are idempotent).
func FuzzScenarioConfig(f *testing.F) {
	f.Add([]byte(minimal()))
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"workload": {"kind": "impulsive", "replications": -1}}`))
	f.Add([]byte(`not json`))
	// Empty replication/arm axes must be rejected at decode time — an
	// accepted config with either would grade vacuously.
	f.Add([]byte(strings.Replace(minimal(), `"seeds": [1]`, `"seeds": []`, 1)))
	f.Add([]byte(`{"name": "x", "seeds": [1], "arms": []}`))
	f.Add([]byte(`{"name": "x", "seeds": []}`))
	// Cluster topology: valid fleet, and the degenerate cluster of one.
	f.Add([]byte(strings.Replace(minimal(),
		`"gateway": {"capacity": 10, "pq": 0.01}`,
		`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 3, "drain_at": 5}`, 1)))
	f.Add([]byte(strings.Replace(minimal(),
		`"gateway": {"capacity": 10, "pq": 0.01}`,
		`"gateway": {"capacity": 10, "pq": 0.01}, "cluster": {"instances": 1}`, 1)))
	paths, _ := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("marshaled form of an accepted config was rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("round-trip drift:\nin  %s\nout %s", data, out)
		}
	})
}
