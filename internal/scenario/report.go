package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The FINDINGS report: a deterministic markdown rendering of a Result in
// the house experiment-report style — status and hypothesis up front,
// experiment design (configurations, controlled and varied variables,
// seeds), per-seed result tables, effect sizes, and the verdict statement.
// Nothing time- or host-dependent goes in: the same seeds must reproduce
// the report byte for byte, which is what the golden test asserts.

// Markdown renders the FINDINGS report.
func (r *Result) Markdown() string {
	var b strings.Builder
	cfg := r.Config
	fmt.Fprintf(&b, "# FINDINGS: %s\n\n", cfg.Title)
	fmt.Fprintf(&b, "**Scenario**: `%s`\n", cfg.Name)
	fmt.Fprintf(&b, "**Status**: %s\n", statusLine(r.Verdict))
	fmt.Fprintf(&b, "**Type**: %s hypothesis, graded over %d seed(s) x %d arm(s)\n\n",
		cfg.Check.Kind, len(cfg.Seeds), len(cfg.Arms))

	b.WriteString("## Hypothesis\n\n")
	fmt.Fprintf(&b, "> %s\n\n", cfg.HypothesisText)

	b.WriteString("## Experiment Design\n\n")
	r.writeDesign(&b)

	b.WriteString("## Results\n\n")
	r.writeResults(&b)

	if len(r.Notes) > 0 {
		b.WriteString("### Grading\n\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Verdict\n\n")
	fmt.Fprintf(&b, "**%s**", strings.ToUpper(r.Verdict.String()))
	if r.Effect != "" {
		fmt.Fprintf(&b, " — %s", r.Effect)
	}
	b.WriteString("\n")
	if r.Verdict != cfg.Expect {
		fmt.Fprintf(&b, "\n> ⚠ expected **%s** — this scenario's expectation does not hold.\n", cfg.Expect)
	}
	return b.String()
}

func statusLine(v Verdict) string {
	switch v {
	case Confirmed:
		return "✅ CONFIRMED"
	case Refuted:
		return "❌ REFUTED"
	}
	return "❔ INCONCLUSIVE"
}

func (r *Result) writeDesign(b *strings.Builder) {
	cfg := r.Config
	w := cfg.Workload
	switch w.Kind {
	case WorkloadImpulsive:
		fmt.Fprintf(b, "- **Workload**: impulsive (Prop 3.3 fill-then-redraw steady state), SVR %g, %d replications per seed\n",
			w.SVR, w.Replications)
	case WorkloadChurn:
		fmt.Fprintf(b, "- **Workload**: churn, lambda %g, mean hold %g, duration %g, tick %g", w.Lambda, w.Hold, w.Duration, w.Tick)
		if w.ArrivalCV != 0 && w.ArrivalCV != 1 {
			fmt.Fprintf(b, ", Gamma arrivals CV %g", w.ArrivalCV)
		}
		b.WriteString("\n")
		if w.Model != nil {
			fmt.Fprintf(b, "- **Flow model**: %s\n", modelLine(w.Model))
		} else {
			fmt.Fprintf(b, "- **Flow model**: RCBR(mu 1, SVR %g, Tc %g)\n", w.SVR, w.TC)
		}
		if w.Crowd != nil {
			fmt.Fprintf(b, "- **Flash crowd**: %gx arrivals over [%g, %g)\n", w.Crowd.Factor, w.Crowd.From, w.Crowd.To)
		}
		if w.Clients != nil {
			fmt.Fprintf(b, "- **Clients**: leak probability %g, declared-rate factor %g\n", w.Clients.LeakP, w.Clients.Lie)
		}
		if w.Renegotiate {
			b.WriteString("- **Renegotiation**: flows redraw their rate at every segment boundary (RCBR dynamics)\n")
		}
		if w.Shift != nil {
			fmt.Fprintf(b, "- **Model shift**: flows arriving from t=%g draw from %s\n", w.Shift.At, modelLine(&w.Shift.Model))
		}
	}
	g := cfg.Gateway
	fmt.Fprintf(b, "- **Gateway**: capacity %g, target p_q %g, estimator %s", g.Capacity, g.PQ, g.Estimator)
	if g.Memory > 0 {
		fmt.Fprintf(b, " (memory %g)", g.Memory)
	}
	if g.Adaptive {
		th := g.Th
		if th == 0 {
			th = cfg.Workload.Hold
		}
		fmt.Fprintf(b, ", adaptive time-scale (Th %g)", th)
	}
	if g.FlowTTL > 0 {
		fmt.Fprintf(b, ", flow TTL %g", g.FlowTTL)
	}
	if g.StaleAfter > 0 {
		fmt.Fprintf(b, ", degrade after %d stale ticks", g.StaleAfter)
	}
	b.WriteString("\n")
	if cl := cfg.Cluster; cl != nil {
		fmt.Fprintf(b, "- **Cluster**: %d instances (capacity is per instance), %s placement", cl.Instances, cl.Policy)
		if cl.Warmup > 0 {
			fmt.Fprintf(b, ", warmup %d", cl.Warmup)
		}
		if cl.Hysteresis > 0 {
			fmt.Fprintf(b, ", hysteresis %g", cl.Hysteresis)
		}
		if cl.DrainAt > 0 {
			fmt.Fprintf(b, "; drain instance %d at t=%g", cl.DrainInstance, cl.DrainAt)
		}
		b.WriteString("; graded on the worst instance's audit\n")
	}
	fmt.Fprintf(b, "- **Target substrate**: %s\n", cfg.Target)
	if len(cfg.Faults) > 0 {
		b.WriteString("- **Fault schedule**: ")
		for i, f := range cfg.Faults {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s over [%g, %g)", f.Mode, f.From, f.To)
		}
		b.WriteString("\n")
	}
	b.WriteString("- **Arms (varied)**:\n")
	for _, a := range cfg.Arms {
		fmt.Fprintf(b, "  - `%s`: policy %s", a.Name, a.Policy)
		if a.Peak > 0 {
			fmt.Fprintf(b, " (peak %g)", a.Peak)
		}
		if a.Eta > 0 {
			fmt.Fprintf(b, " (eta %g)", a.Eta)
		}
		if a.Degraded != "" {
			fmt.Fprintf(b, ", degraded policy %s", a.Degraded)
		}
		if a.Estimator != "" {
			fmt.Fprintf(b, ", estimator %s", a.Estimator)
		}
		if a.Memory != 0 {
			fmt.Fprintf(b, ", memory %g", a.Memory)
		}
		if a.Adaptive != nil {
			fmt.Fprintf(b, ", adaptive %t", *a.Adaptive)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(b, "- **Controlled**: identical schedules, gateway configuration and PCG substreams across arms; seeds %s\n", seedList(cfg.Seeds))
	fmt.Fprintf(b, "- **References**: sqrt2-law p_f = %.4g at p_q = %g", r.Sqrt2Law, g.PQ)
	if r.Reference > 0 {
		fmt.Fprintf(b, "; graded against %.4g", r.Reference)
	}
	if iv := cfg.Check.Interval; iv != nil && iv.GradeAfter > 0 {
		fmt.Fprintf(b, "; graded from t=%g (transient excluded)", iv.GradeAfter)
	}
	b.WriteString("\n\n")
}

func modelLine(m *ModelSpec) string {
	switch m.Kind {
	case "rcbr":
		return fmt.Sprintf("RCBR(mu %g, SVR %g, Tc %g)", m.Mu, m.SVR, m.TC)
	case "onoff":
		return fmt.Sprintf("on-off(peak %g, on %g, off %g)", m.Peak, m.OnTime, m.OffTime)
	case "constant":
		return fmt.Sprintf("constant(rate %g)", m.Rate)
	case "mixture":
		parts := make([]string, len(m.Mix))
		for i := range m.Mix {
			parts[i] = fmt.Sprintf("%g x %s", m.Mix[i].Weight, modelLine(&m.Mix[i].Model))
		}
		return "mixture(" + strings.Join(parts, ", ") + ")"
	}
	return m.Kind
}

func seedList(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ", ")
}

func (r *Result) writeResults(b *strings.Builder) {
	switch r.Config.Check.Kind {
	case HypInterval:
		b.WriteString("| seed | arm | p_f | Wilson CI | n | qos verdict |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		for _, c := range r.Cells {
			fmt.Fprintf(b, "| %d | %s | %.4g | [%.4g, %.4g] | %d | %s |\n",
				c.Seed, c.Arm, c.Overflow.P, c.Overflow.Lo, c.Overflow.Hi, c.Overflow.N, c.QoS)
		}
	case HypDominance:
		d := r.Config.Check.Dominance
		fmt.Fprintf(b, "| seed | arm | %s | admitted | rejected | storm-admitted | degraded ticks | util |\n", d.Metric)
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, c := range r.Cells {
			fmt.Fprintf(b, "| %d | %s | %.6g | %d | %d | %d | %d | %.3f |\n",
				c.Seed, c.Arm, c.Metric(d.Metric), c.Stats.Admitted, c.Stats.Rejected,
				c.StormAdmitted, c.DegradedTicks, c.UtilMean)
		}
	case HypInvariant:
		b.WriteString("| seed | arm | admitted | rejected | departed | expired | active | p_f |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
		for _, c := range r.Cells {
			fmt.Fprintf(b, "| %d | %s | %d | %d | %d | %d | %d | %.4g |\n",
				c.Seed, c.Arm, c.Stats.Admitted, c.Stats.Rejected, c.Stats.Departed,
				c.Stats.Expired, c.Stats.Active, c.Overflow.P)
		}
	}
	b.WriteString("\n")
	r.writeAdaptive(b)
}

// writeAdaptive renders the time-scale controller table for cells that
// ran with adaptive measurement; scenarios without adaptive arms emit
// nothing, keeping their reports byte-identical.
func (r *Result) writeAdaptive(b *strings.Builder) {
	any := false
	for _, c := range r.Cells {
		if c.Adaptive != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("### Adaptive time-scale controller\n\n")
	b.WriteString("| seed | arm | T_m | target | T^_c | regime | retunes | blocks |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Cells {
		a := c.Adaptive
		if a == nil {
			continue
		}
		fmt.Fprintf(b, "| %d | %s | %.4g | %.4g | %.4g | %s | %d | %d |\n",
			c.Seed, c.Arm, a.Tm, a.Target, a.TcHat, a.Regime, a.Retunes, a.Blocks)
	}
	b.WriteString("\n")
}

// JSONVerdict renders the machine-readable verdict document.
func (r *Result) JSONVerdict() ([]byte, error) {
	doc := struct {
		Name      string         `json:"name"`
		Title     string         `json:"title"`
		Verdict   Verdict        `json:"verdict"`
		Expect    Verdict        `json:"expect"`
		Matched   bool           `json:"matched"`
		Kind      HypothesisKind `json:"hypothesis"`
		Sqrt2Law  float64        `json:"sqrt2_law"`
		Reference float64        `json:"reference,omitempty"`
		Effect    string         `json:"effect,omitempty"`
		Notes     []string       `json:"notes"`
		Cells     []CellResult   `json:"cells"`
	}{
		Name:      r.Config.Name,
		Title:     r.Config.Title,
		Verdict:   r.Verdict,
		Expect:    r.Config.Expect,
		Matched:   r.Matched(),
		Kind:      r.Config.Check.Kind,
		Sqrt2Law:  r.Sqrt2Law,
		Reference: r.Reference,
		Effect:    r.Effect,
		Notes:     r.Notes,
		Cells:     r.Cells,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
