// Package metrics provides the allocation-free instrumentation primitives
// for the online MBAC: atomic counters, float gauges, lock-free streaming
// histograms, and a snapshot ring for estimator state. The admission hot
// path (gateway.Admit) records into these types with plain atomic
// operations — no locks, no heap allocations — so instrumentation never
// perturbs the quantity it measures (BenchmarkGatewayAdmit must stay at
// 0 allocs/op).
//
// Readers take weakly-consistent snapshots: every individual value is read
// atomically (no torn 64-bit reads), but values sampled while writers are
// active may be mutually out of sync by a few operations. That is the
// standard contract of serving-system metrics and is exactly what the
// paper's measurement philosophy prescribes — the controller itself must
// tolerate noisy, slightly stale observations (Section 4).
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d >= 0 for Prometheus counter semantics; not enforced).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically published float64 value (e.g. the admissible
// bound M). The zero value reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set publishes v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the last published value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a lock-free streaming histogram with fixed bucket upper
// bounds. Observe is wait-free on the bucket and count updates and
// lock-free (CAS loop) on the running sum; none of them allocate. Bucket i
// counts observations v with v <= bounds[i]; the final implicit bucket
// counts everything above the last bound.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last catches v > bounds[len-1]
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given strictly increasing,
// finite upper bounds. It panics on invalid bounds: histogram layout is a
// compile-time-style configuration error, not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// ExpBounds returns n bucket bounds starting at lo and growing by factor:
// lo, lo·f, lo·f², … — the usual layout for latency histograms.
func ExpBounds(lo, factor float64, n int) []float64 {
	if !(lo > 0) || !(factor > 1) || n < 1 {
		panic("metrics: ExpBounds requires lo > 0, factor > 1, n >= 1")
	}
	bounds := make([]float64, n)
	v := lo
	for i := range bounds {
		bounds[i] = v
		v *= factor
	}
	return bounds
}

// DefaultLatencyBounds spans 250ns to ~4ms (doubling), in seconds — sized
// for the gateway admission path, whose uncontended cost is ~100ns.
func DefaultLatencyBounds() []float64 { return ExpBounds(250e-9, 2, 15) }

// Observe records v. NaN observations are dropped (a poisoned latency
// sample must not poison the sum).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Linear scan: bounds are few (≤ ~20) and the branch predictor wins
	// over binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveN records n observations of v in one pass — one bucket add, one
// count add, one sum CAS loop regardless of n. The server's batched hot
// path uses it to attribute a per-decision mean to every decision of an
// AdmitBatch flush without paying one Observe per decision. n <= 0 and
// NaN observations are dropped.
func (h *Histogram) ObserveN(v float64, n int) {
	if n <= 0 || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(int64(n))
	h.count.Add(int64(n))
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a Histogram, JSON-encodable
// and convertible to the Prometheus exposition format. Counts has one more
// entry than Bounds (the overflow bucket).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram state. Weakly consistent under concurrent
// writers (see the package comment); every field is individually torn-free.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observation (0 if empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, taking the lowest bound as 0
// and clamping the overflow bucket to its lower bound. Returns 0 for an
// empty snapshot and NaN for malformed input.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || len(s.Counts) != len(s.Bounds)+1 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if i == len(s.Bounds) {
				return lo // open-ended bucket: report its lower edge
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(s.Bounds[i]-lo)
		}
		cum = next
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}
