package metrics

import "sync"

// EstimatePoint is one measurement tick's view of the estimator: the
// paper's (μ̂_t, σ̂_t) of eq. 6/7 tagged with the filter memory T_m that
// produced them (Section 4.3; T_m = 0 denotes the memoryless estimator of
// eq. 23).
type EstimatePoint struct {
	Time  float64 `json:"t"`     // virtual time of the tick
	Mu    float64 `json:"mu"`    // estimated per-flow mean μ̂
	Sigma float64 `json:"sigma"` // estimated per-flow stddev σ̂
	OK    bool    `json:"ok"`    // estimator warmed up (≥ 2 flows seen)
	Tm    float64 `json:"tm"`    // filter memory window of the estimator
}

// Ring retains the last N estimate points. It is written once per
// measurement tick — far off the admission hot path — so a plain mutex is
// the right tool; Snapshot copies out in chronological order.
type Ring struct {
	mu   sync.Mutex
	buf  []EstimatePoint
	next int
	full bool
}

// NewRing returns a ring holding the last n points (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]EstimatePoint, n)}
}

// Push appends a point, evicting the oldest when full.
func (r *Ring) Push(p EstimatePoint) {
	r.mu.Lock()
	r.buf[r.next] = p
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of retained points.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the retained points oldest-first.
func (r *Ring) Snapshot() []EstimatePoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]EstimatePoint(nil), r.buf[:r.next]...)
	}
	out := make([]EstimatePoint, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
