package metrics

import "math"

// LocalHistogram is the single-writer counterpart of Histogram: plain
// (non-atomic) buckets, count and sum, intended to live under a lock the
// writer already holds — e.g. one per gateway shard, updated inside the
// shard's critical section and merged into a global snapshot only when a
// reader asks. Compared to the atomic Histogram this removes two atomic
// adds and a CAS loop from every observation, which is what makes striped
// per-shard latency recording affordable on the admission hot path.
//
// A LocalHistogram is NOT safe for concurrent use; the owner must
// serialize Observe/AddTo calls externally.
type LocalHistogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last catches v > bounds[len-1]
	count  uint64
	sum    float64
}

// NewLocalHistogram returns a histogram over the given strictly
// increasing, finite upper bounds, with the same validation (and panics)
// as NewHistogram. The bounds slice is aliased, not copied, so many
// striped histograms can share one layout allocation.
func NewLocalHistogram(bounds []float64) *LocalHistogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &LocalHistogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records v. NaN observations are dropped, matching Histogram.
func (h *LocalHistogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of value v in one call — the batch-admit
// path observes the per-item mean latency once for the whole batch. n <= 0
// and NaN values are no-ops.
func (h *LocalHistogram) ObserveN(v float64, n int) {
	if n <= 0 || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i] += uint64(n)
	h.count += uint64(n)
	h.sum += v * float64(n)
}

// Count returns the total number of observations.
func (h *LocalHistogram) Count() int64 { return int64(h.count) }

// Sum returns the running sum of observations.
func (h *LocalHistogram) Sum() float64 { return h.sum }

// AddTo accumulates this histogram into s, which must have the same bucket
// layout (it panics otherwise: mixing layouts is a programming error, not
// a runtime condition). It is how striped per-shard histograms merge into
// the single exported snapshot.
func (h *LocalHistogram) AddTo(s *HistogramSnapshot) {
	if len(s.Counts) != len(h.counts) || len(s.Bounds) != len(h.bounds) {
		panic("metrics: AddTo bucket layout mismatch")
	}
	for i, c := range h.counts {
		s.Counts[i] += int64(c)
	}
	s.Count += int64(h.count)
	s.Sum += h.sum
}

// EmptySnapshot returns a zeroed snapshot with this histogram's layout,
// ready to AddTo into.
func (h *LocalHistogram) EmptySnapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
}
