package metrics

import (
	"math"
	"testing"
)

func TestLocalHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":          {},
		"nan":            {1, math.NaN()},
		"inf":            {1, math.Inf(1)},
		"non-increasing": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: want panic", name)
				}
			}()
			NewLocalHistogram(bounds)
		}()
	}
}

// TestLocalHistogramMatchesAtomic pins the contract that LocalHistogram is
// a drop-in single-writer replacement: the same observation stream must
// produce an identical snapshot to the atomic Histogram's.
func TestLocalHistogramMatchesAtomic(t *testing.T) {
	bounds := DefaultLatencyBounds()
	local := NewLocalHistogram(bounds)
	atomicH := NewHistogram(bounds)
	obs := []float64{0, 100e-9, 250e-9, 251e-9, 1e-6, 3e-3, 10e-3, math.NaN(), -1}
	for _, v := range obs {
		local.Observe(v)
		atomicH.Observe(v)
	}
	want := atomicH.Snapshot()
	got := local.EmptySnapshot()
	local.AddTo(&got)
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("count/sum mismatch: local (%d, %v), atomic (%d, %v)",
			got.Count, got.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: local %d, atomic %d", i, got.Counts[i], want.Counts[i])
		}
	}
	if local.Count() != atomicH.Count() || local.Sum() != atomicH.Sum() {
		t.Fatal("accessor mismatch between local and atomic histograms")
	}
}

func TestLocalHistogramObserveN(t *testing.T) {
	h := NewLocalHistogram([]float64{1, 2})
	h.ObserveN(1.5, 3)
	h.ObserveN(1.5, 0)  // no-op
	h.ObserveN(1.5, -4) // no-op
	h.ObserveN(math.NaN(), 5)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 4.5 {
		t.Fatalf("sum = %v, want 4.5", h.Sum())
	}
	s := h.EmptySnapshot()
	h.AddTo(&s)
	if s.Counts[1] != 3 {
		t.Fatalf("bucket 1 = %d, want 3", s.Counts[1])
	}
}

// TestLocalHistogramMerge checks that striped histograms AddTo-merge into
// one snapshot equal to a single histogram fed the union of observations.
func TestLocalHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10, 100}
	stripes := []*LocalHistogram{
		NewLocalHistogram(bounds), NewLocalHistogram(bounds), NewLocalHistogram(bounds),
	}
	whole := NewLocalHistogram(bounds)
	vals := []float64{0.5, 2, 3, 50, 200, 7, 0.1, 99}
	for i, v := range vals {
		stripes[i%len(stripes)].Observe(v)
		whole.Observe(v)
	}
	merged := stripes[0].EmptySnapshot()
	for _, st := range stripes {
		st.AddTo(&merged)
	}
	want := whole.EmptySnapshot()
	whole.AddTo(&want)
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged (%d, %v) != whole (%d, %v)", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, whole %d", i, merged.Counts[i], want.Counts[i])
		}
	}
}

func TestLocalHistogramAddToLayoutMismatch(t *testing.T) {
	h := NewLocalHistogram([]float64{1, 2})
	s := HistogramSnapshot{Bounds: []float64{1}, Counts: make([]int64, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch: want panic")
		}
	}()
	h.AddTo(&s)
}
