package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text exposition (version 0.0.4) writers. Higher layers
// compose these into a full /metrics page; each writer emits the HELP/TYPE
// header and the sample lines for one metric family.

// WriteCounter writes one counter family with a single sample.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge writes one gauge family with a single sample.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
}

// WriteHistogram writes one histogram family in the cumulative-bucket form
// Prometheus expects (le-labelled buckets, +Inf bucket, _sum and _count).
func WriteHistogram(w io.Writer, name, help string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	if len(s.Counts) == len(s.Bounds)+1 {
		cum += s.Counts[len(s.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(s.Sum), name, s.Count)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
