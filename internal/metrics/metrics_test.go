package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge = %v, want 0", g.Load())
	}
	g.Set(86.25)
	if g.Load() != 86.25 {
		t.Fatalf("gauge = %v, want 86.25", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// v <= 1 -> bucket 0 (0.5 and 1), v <= 2 -> bucket 1 (1.5),
	// v <= 4 -> bucket 2 (3), overflow -> bucket 3 (100); NaN dropped.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-12 {
		t.Fatalf("sum = %v, want 106", s.Sum)
	}
	if math.Abs(s.Mean()-21.2) > 1e-12 {
		t.Fatalf("mean = %v, want 21.2", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5)  // bucket 0
		h.Observe(15) // bucket 1
	}
	s := h.Snapshot()
	// Median sits at the bucket boundary; q=0.25 is interpolated inside
	// bucket 0 ([0, 10]).
	if q := s.Quantile(0.25); math.Abs(q-5) > 1e-9 {
		t.Errorf("q25 = %v, want 5", q)
	}
	if q := s.Quantile(1); math.Abs(q-20) > 1e-9 {
		t.Errorf("q100 = %v, want 20", q)
	}
	if q := s.Quantile(0); q < 0 || q > 10 {
		t.Errorf("q0 = %v out of bucket 0", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	// Overflow-bucket quantile clamps to the last bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Errorf("overflow quantile = %v, want 1", q)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", b, want)
		}
	}
	if db := DefaultLatencyBounds(); len(db) != 15 || db[0] != 250e-9 {
		t.Fatalf("DefaultLatencyBounds = %v", db)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader snapshots; run with -race this verifies the lock-free paths, and
// the final totals must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 10))
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if int64(len(s.Counts)) < 0 { // keep the read alive
					t.Error("impossible")
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 1000)
			}
		}()
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
	// Sum of 0/1000 .. (workers*per-1)/1000.
	n := float64(workers * per)
	wantSum := n * (n - 1) / 2 / 1000
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if got := r.Snapshot(); len(got) != 0 || r.Len() != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Push(EstimatePoint{Time: float64(i), Mu: 1, Tm: 10})
	}
	got := r.Snapshot()
	if r.Len() != 3 || len(got) != 3 {
		t.Fatalf("ring len = %d/%d, want 3", r.Len(), len(got))
	}
	for i, want := range []float64{3, 4, 5} {
		if got[i].Time != want {
			t.Fatalf("snapshot order = %v", got)
		}
	}
}

func TestEstimatePointJSONStable(t *testing.T) {
	p := EstimatePoint{Time: 1.5, Mu: 1.01, Sigma: 0.3, OK: true, Tm: 20}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"t":1.5,"mu":1.01,"sigma":0.3,"ok":true,"tm":20}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	WriteCounter(&sb, "mbac_admitted_total", "flows admitted", 42)
	WriteGauge(&sb, "mbac_bound", "published admissible bound", 86.5)
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	WriteHistogram(&sb, "mbac_latency_seconds", "admit latency", h.Snapshot())
	out := sb.String()
	for _, want := range []string{
		"# TYPE mbac_admitted_total counter\nmbac_admitted_total 42\n",
		"# TYPE mbac_bound gauge\nmbac_bound 86.5\n",
		"mbac_latency_seconds_bucket{le=\"1\"} 1\n",
		"mbac_latency_seconds_bucket{le=\"2\"} 2\n",
		"mbac_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"mbac_latency_seconds_sum 11\n",
		"mbac_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultLatencyBounds())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-7
		for pb.Next() {
			h.Observe(v)
			v *= 1.1
			if v > 1e-2 {
				v = 1e-7
			}
		}
	})
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.ObserveN(1.5, 3)
	h.ObserveN(100, 2)
	h.ObserveN(0.5, 0)            // dropped: n <= 0
	h.ObserveN(0.5, -4)           // dropped: n <= 0
	h.ObserveN(math.NaN(), 5)     // dropped: NaN
	want := []int64{0, 3, 0, 2}   // 1.5 -> bucket 1, 100 -> overflow
	s := h.Snapshot()
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-204.5) > 1e-12 {
		t.Fatalf("sum = %v, want 204.5", s.Sum)
	}

	// ObserveN(v, 1) must be indistinguishable from Observe(v).
	a, b := NewHistogram([]float64{1, 2}), NewHistogram([]float64{1, 2})
	for _, v := range []float64{0.25, 1, 3, 9} {
		a.Observe(v)
		b.ObserveN(v, 1)
	}
	as, bs := a.Snapshot(), b.Snapshot()
	if as.Count != bs.Count || as.Sum != bs.Sum {
		t.Fatalf("ObserveN(v,1) diverges from Observe: %+v vs %+v", as, bs)
	}
	for i := range as.Counts {
		if as.Counts[i] != bs.Counts[i] {
			t.Fatalf("bucket %d: ObserveN %d vs Observe %d", i, bs.Counts[i], as.Counts[i])
		}
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	var c Counter
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3e-7)
		c.Inc()
		g.Set(1.25)
	})
	if allocs != 0 {
		t.Fatalf("hot-path instrumentation allocates %v per op, want 0", allocs)
	}
}
