package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// sampleModel draws time-weighted statistics from a source over many
// segments and returns (mean, variance).
func sampleModel(m Model, seed uint64, segments int) (mean, variance float64) {
	src := m.New(rng.New(seed, 0))
	var tw stats.TimeWeighted
	var tw2 stats.TimeWeighted
	for i := 0; i < segments; i++ {
		seg := src.Next()
		tw.Observe(seg.Rate, seg.Duration)
		tw2.Observe(seg.Rate*seg.Rate, seg.Duration)
	}
	mean = tw.Mean()
	return mean, tw2.Mean() - mean*mean
}

func TestRCBRStats(t *testing.T) {
	m := NewRCBR(1.0, 0.3, 2.0)
	s := m.Stats()
	// Truncation at 0 is negligible for sigma/mu=0.3.
	if math.Abs(s.Mean-1) > 1e-3 {
		t.Errorf("RCBR mean = %v, want ~1", s.Mean)
	}
	if math.Abs(s.StdDev()-0.3) > 1e-3 {
		t.Errorf("RCBR sigma = %v, want ~0.3", s.StdDev())
	}
	if s.CorrTime != 2.0 {
		t.Errorf("CorrTime = %v", s.CorrTime)
	}
}

func TestRCBREmpiricalMatchesStats(t *testing.T) {
	m := NewRCBR(2.0, 0.3, 1.5)
	want := m.Stats()
	mean, variance := sampleModel(m, 42, 200000)
	if math.Abs(mean-want.Mean)/want.Mean > 0.01 {
		t.Errorf("empirical mean %v vs stats %v", mean, want.Mean)
	}
	if math.Abs(variance-want.Variance)/want.Variance > 0.05 {
		t.Errorf("empirical var %v vs stats %v", variance, want.Variance)
	}
}

func TestRCBRSegmentDurations(t *testing.T) {
	m := NewRCBR(1, 0.3, 3.0)
	src := m.New(rng.New(7, 0))
	var mom stats.Moments
	for i := 0; i < 100000; i++ {
		seg := src.Next()
		if seg.Duration <= 0 {
			t.Fatal("non-positive segment duration")
		}
		if seg.Rate < 0 {
			t.Fatal("negative rate")
		}
		mom.Add(seg.Duration)
	}
	if math.Abs(mom.Mean()-3)/3 > 0.02 {
		t.Errorf("mean segment duration %v, want 3", mom.Mean())
	}
}

func TestRCBRHeavyTruncation(t *testing.T) {
	// sigma/mu = 2 truncates heavily; Stats must reflect the conditioned
	// moments, and samples must respect them.
	m := RCBR{Mean: 1, Sigma: 2, CorrTime: 1}
	want := m.Stats()
	if want.Mean <= 1 {
		t.Errorf("truncated mean should exceed raw mean, got %v", want.Mean)
	}
	mean, variance := sampleModel(m, 1, 300000)
	if math.Abs(mean-want.Mean)/want.Mean > 0.02 {
		t.Errorf("empirical mean %v vs stats %v", mean, want.Mean)
	}
	if math.Abs(variance-want.Variance)/want.Variance > 0.05 {
		t.Errorf("empirical var %v vs stats %v", variance, want.Variance)
	}
}

func TestOnOffStats(t *testing.T) {
	m := OnOff{PeakRate: 10, OnTime: 1, OffTime: 3}
	s := m.Stats()
	if math.Abs(s.Mean-2.5) > 1e-12 { // pOn = 1/4
		t.Errorf("on-off mean = %v, want 2.5", s.Mean)
	}
	wantVar := 0.25 * 0.75 * 100
	if math.Abs(s.Variance-wantVar) > 1e-9 {
		t.Errorf("on-off var = %v, want %v", s.Variance, wantVar)
	}
	if s.Peak != 10 {
		t.Errorf("peak = %v", s.Peak)
	}
	if math.Abs(s.CorrTime-0.75) > 1e-12 {
		t.Errorf("corr time = %v, want 0.75", s.CorrTime)
	}
}

func TestOnOffEmpirical(t *testing.T) {
	m := OnOff{PeakRate: 5, OnTime: 2, OffTime: 2}
	want := m.Stats()
	mean, variance := sampleModel(m, 3, 200000)
	if math.Abs(mean-want.Mean)/want.Mean > 0.02 {
		t.Errorf("empirical mean %v vs %v", mean, want.Mean)
	}
	if math.Abs(variance-want.Variance)/want.Variance > 0.05 {
		t.Errorf("empirical var %v vs %v", variance, want.Variance)
	}
}

func TestOnOffAlternates(t *testing.T) {
	m := OnOff{PeakRate: 1, OnTime: 1, OffTime: 1}
	src := m.New(rng.New(5, 0))
	prev := src.Next().Rate
	for i := 0; i < 100; i++ {
		cur := src.Next().Rate
		if cur == prev {
			t.Fatal("on-off must alternate")
		}
		prev = cur
	}
}

func TestMarkovFluidValidation(t *testing.T) {
	if _, err := NewMarkovFluid(nil, nil); err == nil {
		t.Error("empty chain should fail")
	}
	if _, err := NewMarkovFluid([]float64{1, 2}, [][]float64{{-1, 1}}); err == nil {
		t.Error("wrong row count should fail")
	}
	if _, err := NewMarkovFluid([]float64{1, 2}, [][]float64{{-1, 1}, {2, -1}}); err == nil {
		t.Error("row not summing to zero should fail")
	}
	if _, err := NewMarkovFluid([]float64{1, 2}, [][]float64{{-1, 1}, {0, 0}}); err == nil {
		t.Error("absorbing state should fail")
	}
	if _, err := NewMarkovFluid([]float64{1, 2}, [][]float64{{-1, -1}, {1, -1}}); err == nil {
		t.Error("negative off-diagonal should fail")
	}
}

func TestMarkovFluidStationary(t *testing.T) {
	// Two-state chain: 0 -> 1 at rate 1, 1 -> 0 at rate 3; pi = (3/4, 1/4).
	m, err := NewMarkovFluid([]float64{0, 8}, [][]float64{{-1, 1}, {3, -3}})
	if err != nil {
		t.Fatal(err)
	}
	pi := m.Stationary()
	if math.Abs(pi[0]-0.75) > 1e-12 || math.Abs(pi[1]-0.25) > 1e-12 {
		t.Errorf("pi = %v, want [0.75 0.25]", pi)
	}
	s := m.Stats()
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("mean = %v, want 2", s.Mean)
	}
	wantVar := 0.25*64 - 4 // E[X^2] - mean^2 = 16 - 4
	if math.Abs(s.Variance-wantVar) > 1e-9 {
		t.Errorf("var = %v, want %v", s.Variance, wantVar)
	}
}

func TestMarkovFluidEquivalentToOnOff(t *testing.T) {
	// A two-state fluid with rates {0, P} is an on-off source; stationary
	// stats must agree.
	onoff := OnOff{PeakRate: 10, OnTime: 1, OffTime: 3}
	mmf, err := NewMarkovFluid([]float64{0, 10}, [][]float64{{-1.0 / 3, 1.0 / 3}, {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := onoff.Stats(), mmf.Stats()
	if math.Abs(a.Mean-b.Mean) > 1e-9 || math.Abs(a.Variance-b.Variance) > 1e-9 {
		t.Errorf("on-off %+v vs MMF %+v", a, b)
	}
}

func TestMarkovFluidEmpirical(t *testing.T) {
	// Three-state birth-death chain.
	m, err := NewMarkovFluid(
		[]float64{1, 2, 4},
		[][]float64{
			{-2, 2, 0},
			{1, -3, 2},
			{0, 2, -2},
		})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Stats()
	mean, variance := sampleModel(m, 11, 300000)
	if math.Abs(mean-want.Mean)/want.Mean > 0.02 {
		t.Errorf("empirical mean %v vs %v", mean, want.Mean)
	}
	if math.Abs(variance-want.Variance)/want.Variance > 0.06 {
		t.Errorf("empirical var %v vs %v", variance, want.Variance)
	}
}

func TestConstantModel(t *testing.T) {
	m := Constant{Rate: 7}
	s := m.Stats()
	if s.Mean != 7 || s.Variance != 0 || s.Peak != 7 {
		t.Errorf("constant stats %+v", s)
	}
	src := m.New(nil)
	seg := src.Next()
	if seg.Rate != 7 || seg.Duration <= 0 {
		t.Errorf("constant segment %+v", seg)
	}
}

func TestModelIndependenceAcrossStreams(t *testing.T) {
	m := NewRCBR(1, 0.3, 1)
	base := rng.New(42, 0)
	a := m.New(base.Split(1))
	b := m.New(base.Split(2))
	var cov, va, vb float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := a.Next().Rate - 1
		y := b.Next().Rate - 1
		cov += x * y
		va += x * x
		vb += y * y
	}
	corr := cov / math.Sqrt(va*vb)
	if math.Abs(corr) > 0.02 {
		t.Errorf("flows from split streams correlated: r = %v", corr)
	}
}

func BenchmarkRCBRNext(b *testing.B) {
	src := NewRCBR(1, 0.3, 1).New(rng.New(1, 1))
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

func BenchmarkMarkovNext(b *testing.B) {
	m, _ := NewMarkovFluid([]float64{0, 1, 2}, [][]float64{{-1, 1, 0}, {1, -2, 1}, {0, 1, -1}})
	src := m.New(rng.New(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}
