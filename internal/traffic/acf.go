package traffic

import (
	"fmt"
	"math"
)

// ACF support: closed-form autocorrelation functions for the source
// models, so that the paper's general boundary-crossing formula (eq. 30,
// theory.ContinuousOverflowGeneralACF) can be driven by any model in this
// package rather than only the exponential rho of the OU/RCBR case.

// ACF returns the RCBR model's autocorrelation function
// rho(t) = exp(−|t|/Tc): a renewal of the rate at Poisson epochs leaves
// correlation equal to the no-renewal probability.
func (m RCBR) ACF() func(float64) float64 {
	return func(t float64) float64 { return math.Exp(-math.Abs(t) / m.CorrTime) }
}

// ACF returns the on-off model's autocorrelation
// rho(t) = exp(−t·(1/OnTime + 1/OffTime)) — the two-state chain's single
// non-zero eigenvalue.
func (m OnOff) ACF() func(float64) float64 {
	lambda := 1/m.OnTime + 1/m.OffTime
	return func(t float64) float64 { return math.Exp(-math.Abs(t) * lambda) }
}

// ACF returns the Markov fluid's exact autocorrelation function
//
//	rho(t) = [ pi·diag(r)·exp(Q|t|)·r − mu² ] / sigma²,
//
// evaluated via a scaling-and-squaring matrix exponential. The cost is
// O(K³ log t) per evaluation; chains in admission-control models are
// small, so this is negligible next to the quadrature it feeds.
func (m *MarkovFluid) ACF() func(float64) float64 {
	st := m.Stats()
	mu, variance := st.Mean, st.Variance
	k := len(m.Rates)
	return func(t float64) float64 {
		if variance <= 0 {
			return 1
		}
		e := expm(m.Gen, math.Abs(t))
		// cov = sum_i pi_i r_i (e r)_i − mu².
		var cov float64
		for i := 0; i < k; i++ {
			var er float64
			for j := 0; j < k; j++ {
				er += e[i][j] * m.Rates[j]
			}
			cov += m.pi[i] * m.Rates[i] * er
		}
		cov -= mu * mu
		rho := cov / variance
		// Numerical noise can push slightly outside [-1, 1].
		return math.Max(-1, math.Min(1, rho))
	}
}

// ACFDerivative0 returns the right derivative rho'(0+) of the Markov
// fluid's autocorrelation, needed by the general hitting formula:
//
//	rho'(0+) = [ pi·diag(r)·Q·r ] / sigma².
func (m *MarkovFluid) ACFDerivative0() float64 {
	st := m.Stats()
	if st.Variance <= 0 {
		return 0
	}
	k := len(m.Rates)
	var d float64
	for i := 0; i < k; i++ {
		var qr float64
		for j := 0; j < k; j++ {
			qr += m.Gen[i][j] * m.Rates[j]
		}
		d += m.pi[i] * m.Rates[i] * qr
	}
	return d / st.Variance
}

// expm computes exp(Q·t) for a small dense matrix by scaling and squaring
// with a degree-8 Taylor kernel: Q·t is scaled by 2^s so its norm is below
// 1/2, the series is summed, and the result squared s times. For generator
// matrices of modest size and norm this is accurate to ~1e-12.
func expm(q [][]float64, t float64) [][]float64 {
	k := len(q)
	a := make([][]float64, k)
	norm := 0.0
	for i := range a {
		a[i] = make([]float64, k)
		rowSum := 0.0
		for j := range a[i] {
			a[i][j] = q[i][j] * t
			rowSum += math.Abs(a[i][j])
		}
		if rowSum > norm {
			norm = rowSum
		}
	}
	s := 0
	for norm > 0.5 {
		norm /= 2
		s++
	}
	scale := math.Ldexp(1, -s)
	for i := range a {
		for j := range a[i] {
			a[i][j] *= scale
		}
	}
	// Taylor series I + A + A²/2! + ... + A⁸/8!.
	result := identity(k)
	term := identity(k)
	for p := 1; p <= 8; p++ {
		term = matMulScaled(term, a, 1/float64(p))
		matAdd(result, term)
	}
	for i := 0; i < s; i++ {
		result = matMulScaled(result, result, 1)
	}
	return result
}

// identity returns the k x k identity matrix.
func identity(k int) [][]float64 {
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
		m[i][i] = 1
	}
	return m
}

// matMulScaled returns (a·b)·f.
func matMulScaled(a, b [][]float64, f float64) [][]float64 {
	k := len(a)
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = make([]float64, k)
		for l := 0; l < k; l++ {
			ail := a[i][l]
			if ail == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				out[i][j] += ail * b[l][j]
			}
		}
		for j := 0; j < k; j++ {
			out[i][j] *= f
		}
	}
	return out
}

// matAdd adds b into a in place.
func matAdd(a, b [][]float64) {
	for i := range a {
		for j := range a[i] {
			a[i][j] += b[i][j]
		}
	}
}

// IntegralCorrTime returns the integral time-scale of an autocorrelation
// function, int_0^inf rho(t) dt, by adaptive trapezoid accumulation until
// the tail contribution is negligible or the horizon cap is reached. It
// returns an error if rho has not decayed by the cap (e.g. long-range
// dependent input).
func IntegralCorrTime(rho func(float64) float64, step, cap float64) (float64, error) {
	if step <= 0 || cap <= step {
		return 0, fmt.Errorf("traffic: invalid integration parameters step=%g cap=%g", step, cap)
	}
	var sum float64
	prev := rho(0)
	for t := step; t <= cap; t += step {
		cur := rho(t)
		sum += 0.5 * (prev + cur) * step
		if math.Abs(cur) < 1e-9 {
			return sum, nil
		}
		prev = cur
	}
	return sum, fmt.Errorf("traffic: autocorrelation has not decayed by t=%g (long memory?)", cap)
}
