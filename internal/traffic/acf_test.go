package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestRCBRACF(t *testing.T) {
	acf := NewRCBR(1, 0.3, 2).ACF()
	for _, tt := range []float64{0, 0.5, 2, 10} {
		want := math.Exp(-tt / 2)
		if math.Abs(acf(tt)-want) > 1e-15 {
			t.Errorf("rho(%v) = %v, want %v", tt, acf(tt), want)
		}
	}
	if acf(-2) != acf(2) {
		t.Error("ACF must be even")
	}
}

func TestOnOffACFMatchesTwoStateFluid(t *testing.T) {
	// The on-off source is a two-state Markov fluid; the matrix-exponential
	// ACF must coincide with the closed form exp(-t(1/on+1/off)).
	onoff := OnOff{PeakRate: 5, OnTime: 1, OffTime: 3}
	mmf, err := NewMarkovFluid([]float64{0, 5}, [][]float64{{-1.0 / 3, 1.0 / 3}, {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := onoff.ACF(), mmf.ACF()
	for _, tt := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		if math.Abs(a(tt)-b(tt)) > 1e-9 {
			t.Errorf("t=%v: on-off %v vs fluid %v", tt, a(tt), b(tt))
		}
	}
	if math.Abs(a(0)-1) > 1e-12 {
		t.Errorf("rho(0) = %v", a(0))
	}
}

func TestMarkovFluidACFEmpirical(t *testing.T) {
	// Three-state chain: compare the analytic ACF with the empirical one
	// from a long sampled path.
	m, err := NewMarkovFluid(
		[]float64{0.5, 1, 3},
		[][]float64{
			{-0.8, 0.8, 0},
			{0.4, -1.0, 0.6},
			{0, 1.2, -1.2},
		})
	if err != nil {
		t.Fatal(err)
	}
	acf := m.ACF()

	// Sample the source on a fine grid.
	const dt, steps = 0.05, 400000
	src := m.New(rng.New(4, 0))
	samples := make([]float64, steps)
	var rate, until float64
	for i := range samples {
		for until <= 0 {
			seg := src.Next()
			rate = seg.Rate
			until += seg.Duration
		}
		samples[i] = rate
		until -= dt
	}
	// Empirical rho at a few lags.
	var mom stats.Moments
	for _, v := range samples {
		mom.Add(v)
	}
	mean, variance := mom.Mean(), mom.Var()
	for _, lag := range []int{10, 20, 40} { // t = 0.5, 1, 2
		var cov float64
		n := len(samples) - lag
		for i := 0; i < n; i++ {
			cov += (samples[i] - mean) * (samples[i+lag] - mean)
		}
		cov /= float64(n)
		got := cov / variance
		want := acf(float64(lag) * dt)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("lag %v: empirical rho %v vs analytic %v", float64(lag)*dt, got, want)
		}
	}
}

func TestMarkovFluidACFDerivative(t *testing.T) {
	// rho'(0+) from the formula vs a finite difference of the ACF.
	m, err := NewMarkovFluid(
		[]float64{1, 4},
		[][]float64{{-2, 2}, {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	acf := m.ACF()
	h := 1e-6
	numeric := (acf(h) - 1) / h
	analytic := m.ACFDerivative0()
	if math.Abs(numeric-analytic) > 1e-4 {
		t.Errorf("rho'(0+): numeric %v vs analytic %v", numeric, analytic)
	}
	// For a two-state chain rho(t) = exp(-(a+b)t), so rho'(0) = -(a+b) = -3.
	if math.Abs(analytic+3) > 1e-9 {
		t.Errorf("two-state derivative %v, want -3", analytic)
	}
}

func TestExpmIdentityAndSemigroup(t *testing.T) {
	q := [][]float64{{-1, 1, 0}, {0.5, -1, 0.5}, {0.2, 0.8, -1}}
	// exp(Q*0) = I.
	e0 := expm(q, 0)
	for i := range e0 {
		for j := range e0[i] {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(e0[i][j]-want) > 1e-12 {
				t.Fatalf("expm(0) not identity at (%d,%d): %v", i, j, e0[i][j])
			}
		}
	}
	// Semigroup: exp(Q·2) == exp(Q·1)·exp(Q·1).
	e1 := expm(q, 1)
	e2 := expm(q, 2)
	prod := matMulScaled(e1, e1, 1)
	for i := range e2 {
		for j := range e2[i] {
			if math.Abs(e2[i][j]-prod[i][j]) > 1e-10 {
				t.Fatalf("semigroup violated at (%d,%d): %v vs %v", i, j, e2[i][j], prod[i][j])
			}
		}
	}
	// Rows of a generator exponential are probability vectors.
	for i, row := range e1 {
		var s float64
		for _, v := range row {
			if v < -1e-12 {
				t.Fatalf("negative transition probability at row %d: %v", i, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-10 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestIntegralCorrTime(t *testing.T) {
	// For rho = exp(-t/3) the integral scale is 3.
	got, err := IntegralCorrTime(func(t float64) float64 { return math.Exp(-t / 3) }, 0.001, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 0.01 {
		t.Errorf("integral corr time = %v, want 3", got)
	}
	if _, err := IntegralCorrTime(func(float64) float64 { return 1 }, 0.1, 10); err == nil {
		t.Error("non-decaying ACF should error")
	}
	if _, err := IntegralCorrTime(nil, 0, 1); err == nil {
		t.Error("bad parameters should error")
	}
}

func BenchmarkMarkovACF(b *testing.B) {
	m, _ := NewMarkovFluid(
		[]float64{0.5, 1, 3},
		[][]float64{{-0.8, 0.8, 0}, {0.4, -1, 0.6}, {0, 1.2, -1.2}})
	acf := m.ACF()
	for i := 0; i < b.N; i++ {
		acf(float64(i%100) / 10)
	}
}
