package traffic

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Mixture models a heterogeneous flow population (Section 5.4 of the
// paper): each new flow is drawn from one of several component models with
// the given probabilities. The paper shows that the cross-sectional
// variance estimator, which treats all flows as sharing one mean, is biased
// upward under heterogeneity — making the MBAC conservative but still
// robust. This model exercises exactly that scenario.
type Mixture struct {
	Models  []Model
	Weights []float64 // non-negative, at least one positive
}

// NewMixture validates and returns a mixture model. Weights are normalized
// internally.
func NewMixture(models []Model, weights []float64) (*Mixture, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("traffic: mixture needs at least one component")
	}
	if len(models) != len(weights) {
		return nil, fmt.Errorf("traffic: %d models but %d weights", len(models), len(weights))
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("traffic: negative weight %g at %d", w, i)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("traffic: weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	return &Mixture{Models: models, Weights: norm}, nil
}

// Stats implements Model: the law-of-total-variance moments of the
// population a randomly drawn flow belongs to.
func (m *Mixture) Stats() Stats {
	var mean, second, tc, peak float64
	for i, comp := range m.Models {
		s := comp.Stats()
		w := m.Weights[i]
		mean += w * s.Mean
		second += w * (s.Variance + s.Mean*s.Mean)
		tc += w * s.CorrTime
		if s.Peak > peak {
			peak = s.Peak
		}
	}
	return Stats{Mean: mean, Variance: second - mean*mean, CorrTime: tc, Peak: peak}
}

// New implements Model: one component is chosen for the flow's lifetime.
func (m *Mixture) New(r *rng.PCG) Source {
	u := r.Float64()
	var cum float64
	for i, w := range m.Weights {
		cum += w
		if u < cum {
			return m.Models[i].New(r)
		}
	}
	return m.Models[len(m.Models)-1].New(r)
}

// WithinClassVariance returns the weight-averaged variance of the
// components — what a class-aware variance estimator would measure. The
// gap to Stats().Variance is the heterogeneity bias of the class-blind
// estimator discussed in Section 5.4.
func (m *Mixture) WithinClassVariance() float64 {
	var v float64
	for i, comp := range m.Models {
		v += m.Weights[i] * comp.Stats().Variance
	}
	return v
}
