// Package traffic implements the stochastic flow models used throughout
// the paper's evaluation. Every model produces a piecewise-constant rate
// process — the Renegotiated Constant Bit Rate (RCBR) abstraction of
// Grossglauser, Keshav & Tse — delivered as a sequence of (rate, duration)
// segments.
//
// The paper's simulations (Section 5.2) use independent homogeneous RCBR
// sources whose marginal rate distribution is Gaussian with sigma/mu = 0.3
// and whose segment lengths are i.i.d. exponential with mean T_c, so that
// the rate autocorrelation is exactly rho(t) = exp(-|t|/T_c) (eq. 31).
// Additional models (Markov-modulated fluid, on-off, trace-driven) exercise
// the same admission-control code path with different burst structure.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/gauss"
	"repro/internal/rng"
)

// Segment is one constant-rate epoch of a flow.
type Segment struct {
	Rate     float64 // bandwidth during the segment
	Duration float64 // length of the segment
}

// Stats describes the stationary marginal of a source model.
type Stats struct {
	Mean     float64 // stationary mean rate (mu)
	Variance float64 // stationary rate variance (sigma^2)
	CorrTime float64 // correlation time-scale T_c (integral scale), 0 if unknown
	Peak     float64 // peak (maximum) rate, +Inf if unbounded
}

// StdDev returns sqrt(Variance).
func (s Stats) StdDev() float64 { return math.Sqrt(s.Variance) }

// Source generates the successive constant-rate segments of one flow.
// Implementations are not safe for concurrent use; each simulated flow owns
// its source.
type Source interface {
	// Next returns the next constant-rate segment.
	Next() Segment
}

// Model is a factory for statistically identical, independent sources. The
// simulator derives one source per admitted flow from the model, feeding
// each a dedicated RNG substream so that experiments are reproducible and
// flows are independent.
type Model interface {
	// New returns a fresh source drawing randomness from r.
	New(r *rng.PCG) Source
	// Stats returns the stationary statistics of the model.
	Stats() Stats
}

// Renewer is an optional Model capability: a model whose sources can be
// reinitialized in place implements it so that Monte Carlo ensembles can
// recycle source allocations across replications. Renew must behave
// exactly like New(r) — same output segments, same draws consumed — but
// may reuse old's storage when old came from an identical model. Models
// whose construction consumes randomness (e.g. a stationary initial-state
// draw) must still perform that draw in Renew to preserve determinism.
type Renewer interface {
	Renew(old Source, r *rng.PCG) Source
}

// ---------------------------------------------------------------------------
// RCBR: the paper's workload.

// RCBR is the paper's renegotiated-CBR source model: at renewal epochs of a
// Poisson process with rate 1/CorrTime the flow redraws its rate from a
// Gaussian N(Mean, Sigma^2) truncated to non-negative values.
type RCBR struct {
	Mean     float64 // marginal mean mu
	Sigma    float64 // marginal standard deviation sigma
	CorrTime float64 // mean segment length T_c
}

// NewRCBR returns the paper's default source: mean rate mu, sigma/mu ratio
// svr (0.3 in the paper) and correlation time tc.
func NewRCBR(mu, svr, tc float64) RCBR {
	return RCBR{Mean: mu, Sigma: svr * mu, CorrTime: tc}
}

// Stats implements Model. The moments account exactly for the truncation of
// the Gaussian at zero (negligible for sigma/mu = 0.3 but not in general).
func (m RCBR) Stats() Stats {
	mean, variance := truncatedNormalMoments(m.Mean, m.Sigma, 0)
	return Stats{Mean: mean, Variance: variance, CorrTime: m.CorrTime, Peak: math.Inf(1)}
}

// New implements Model.
func (m RCBR) New(r *rng.PCG) Source {
	return &rcbrSource{m: m, r: r}
}

// Renew implements Renewer: an RCBR source carries no state beyond its
// parameters and stream, so reseeding in place is exactly New.
func (m RCBR) Renew(old Source, r *rng.PCG) Source {
	if s, ok := old.(*rcbrSource); ok && s.m == m {
		s.r = r
		return s
	}
	return m.New(r)
}

type rcbrSource struct {
	m RCBR
	r *rng.PCG
}

func (s *rcbrSource) Next() Segment {
	return Segment{
		Rate:     s.r.TruncatedNormal(s.m.Mean, s.m.Sigma, 0),
		Duration: s.r.Exp(s.m.CorrTime),
	}
}

// truncatedNormalMoments returns the mean and variance of N(mu, sigma^2)
// conditioned on being >= lo.
func truncatedNormalMoments(mu, sigma, lo float64) (mean, variance float64) {
	if sigma == 0 {
		return mu, 0
	}
	a := (lo - mu) / sigma
	z := 1 - gauss.CDF(a)
	if z <= 0 {
		return lo, 0
	}
	lambda := gauss.Phi(a) / z
	mean = mu + sigma*lambda
	variance = sigma * sigma * (1 + a*lambda - lambda*lambda)
	return mean, variance
}

// ---------------------------------------------------------------------------
// On-off source.

// OnOff is a two-state fluid source: it emits PeakRate for an exponential
// on-period with mean OnTime, then is silent for an exponential off-period
// with mean OffTime.
type OnOff struct {
	PeakRate float64
	OnTime   float64
	OffTime  float64
}

// Stats implements Model. For a two-state Markov fluid the stationary
// on-probability is OnTime/(OnTime+OffTime) and the autocorrelation decays
// as exp(-t (1/OnTime + 1/OffTime)), giving the integral correlation time
// 1/(1/OnTime + 1/OffTime).
func (m OnOff) Stats() Stats {
	pOn := m.OnTime / (m.OnTime + m.OffTime)
	mean := pOn * m.PeakRate
	variance := pOn * (1 - pOn) * m.PeakRate * m.PeakRate
	tc := 1 / (1/m.OnTime + 1/m.OffTime)
	return Stats{Mean: mean, Variance: variance, CorrTime: tc, Peak: m.PeakRate}
}

// New implements Model. Sources start in a state drawn from the stationary
// distribution so that the aggregate process is stationary from time zero.
func (m OnOff) New(r *rng.PCG) Source {
	on := r.Float64() < m.OnTime/(m.OnTime+m.OffTime)
	return &onOffSource{m: m, r: r, on: on}
}

type onOffSource struct {
	m  OnOff
	r  *rng.PCG
	on bool
}

func (s *onOffSource) Next() Segment {
	var seg Segment
	if s.on {
		seg = Segment{Rate: s.m.PeakRate, Duration: s.r.Exp(s.m.OnTime)}
	} else {
		seg = Segment{Rate: 0, Duration: s.r.Exp(s.m.OffTime)}
	}
	s.on = !s.on
	return seg
}

// ---------------------------------------------------------------------------
// Markov-modulated fluid.

// MarkovFluid is a K-state continuous-time Markov fluid source: in state i
// the flow emits Rates[i]; it leaves state i after an exponential sojourn
// with rate -Gen[i][i], jumping to j with probability Gen[i][j]/(-Gen[i][i]).
// The appendix of the paper (Assumption B.6) cites exactly this class as
// one for which the functional central limit theorem holds.
type MarkovFluid struct {
	Rates []float64   // emission rate per state
	Gen   [][]float64 // generator matrix Q: Gen[i][j] >= 0 for i != j, rows sum to 0

	pi []float64 // cached stationary distribution
}

// NewMarkovFluid validates and returns a Markov fluid model. It returns an
// error if the generator is malformed or the chain has an absorbing state.
func NewMarkovFluid(rates []float64, gen [][]float64) (*MarkovFluid, error) {
	k := len(rates)
	if k == 0 {
		return nil, fmt.Errorf("traffic: MarkovFluid needs at least one state")
	}
	if len(gen) != k {
		return nil, fmt.Errorf("traffic: generator has %d rows, want %d", len(gen), k)
	}
	for i, row := range gen {
		if len(row) != k {
			return nil, fmt.Errorf("traffic: generator row %d has %d entries, want %d", i, len(row), k)
		}
		var sum float64
		for j, q := range row {
			if i == j {
				continue
			}
			if q < 0 {
				return nil, fmt.Errorf("traffic: negative off-diagonal generator entry at (%d,%d)", i, j)
			}
			sum += q
		}
		if math.Abs(row[i]+sum) > 1e-9*(1+sum) {
			return nil, fmt.Errorf("traffic: generator row %d does not sum to zero", i)
		}
		if k > 1 && sum == 0 {
			return nil, fmt.Errorf("traffic: state %d is absorbing", i)
		}
	}
	m := &MarkovFluid{Rates: rates, Gen: gen}
	pi, err := stationary(gen)
	if err != nil {
		return nil, err
	}
	m.pi = pi
	return m, nil
}

// Stationary returns the stationary distribution of the modulating chain.
func (m *MarkovFluid) Stationary() []float64 {
	return append([]float64(nil), m.pi...)
}

// Stats implements Model. The correlation time reported is the integral
// time-scale of the rate process computed from the spectral decomposition
// being unavailable in closed form for general chains; we report the
// sojourn-weighted mean holding time as a practical proxy, and 0 for
// single-state chains.
func (m *MarkovFluid) Stats() Stats {
	var mean, second, peak, tc float64
	for i, p := range m.pi {
		mean += p * m.Rates[i]
		second += p * m.Rates[i] * m.Rates[i]
		if m.Rates[i] > peak {
			peak = m.Rates[i]
		}
		if len(m.pi) > 1 {
			tc += p / (-m.Gen[i][i])
		}
	}
	return Stats{Mean: mean, Variance: second - mean*mean, CorrTime: tc, Peak: peak}
}

// New implements Model. The initial state is drawn from the stationary
// distribution.
func (m *MarkovFluid) New(r *rng.PCG) Source {
	state := sampleDiscrete(m.pi, r)
	return &markovSource{m: m, r: r, state: state}
}

type markovSource struct {
	m     *MarkovFluid
	r     *rng.PCG
	state int
}

func (s *markovSource) Next() Segment {
	i := s.state
	exit := -s.m.Gen[i][i]
	if exit <= 0 { // single-state chain: constant rate forever (in big chunks)
		return Segment{Rate: s.m.Rates[i], Duration: math.MaxFloat64 / 4}
	}
	seg := Segment{Rate: s.m.Rates[i], Duration: s.r.Exp(1 / exit)}
	// Jump: choose next state proportional to off-diagonal rates.
	u := s.r.Float64() * exit
	var cum float64
	for j, q := range s.m.Gen[i] {
		if j == i {
			continue
		}
		cum += q
		if u < cum {
			s.state = j
			break
		}
	}
	return seg
}

// sampleDiscrete draws an index from the probability vector p.
func sampleDiscrete(p []float64, r *rng.PCG) int {
	u := r.Float64()
	var cum float64
	for i, pi := range p {
		cum += pi
		if u < cum {
			return i
		}
	}
	return len(p) - 1
}

// stationary solves pi Q = 0, sum(pi) = 1 by Gaussian elimination on the
// transposed system with the normalization replacing one equation.
func stationary(gen [][]float64) ([]float64, error) {
	k := len(gen)
	if k == 1 {
		return []float64{1}, nil
	}
	// Build A = Q^T with last row replaced by ones; b = e_k.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a[i][j] = gen[j][i]
		}
	}
	for j := 0; j < k; j++ {
		a[k-1][j] = 1
	}
	b[k-1] = 1
	pi, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("traffic: cannot solve for stationary distribution: %w", err)
	}
	for i, p := range pi {
		if p < -1e-9 {
			return nil, fmt.Errorf("traffic: stationary distribution has negative mass at state %d", i)
		}
		if p < 0 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// solveLinear solves a dense linear system by Gaussian elimination with
// partial pivoting. It mutates its arguments.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("singular matrix at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// ---------------------------------------------------------------------------
// Constant-rate source (useful as a degenerate baseline and in tests).

// Constant is a CBR source emitting Rate forever.
type Constant struct {
	Rate float64
}

// Stats implements Model.
func (m Constant) Stats() Stats {
	return Stats{Mean: m.Rate, Variance: 0, CorrTime: 0, Peak: m.Rate}
}

// New implements Model.
func (m Constant) New(*rng.PCG) Source { return constSource{rate: m.Rate} }

type constSource struct{ rate float64 }

func (s constSource) Next() Segment {
	return Segment{Rate: s.rate, Duration: math.MaxFloat64 / 4}
}
