package traffic

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/rng"
)

// columnarModels enumerates the models whose columnar path must be
// bit-identical to the scalar Source path.
func columnarModels(t *testing.T) map[string]Model {
	t.Helper()
	mix, err := NewMixture(
		[]Model{NewRCBR(1, 0.3, 1), OnOff{PeakRate: 2.5, OnTime: 0.4, OffTime: 1.1}, Constant{Rate: 0.7}},
		[]float64{0.5, 0.3, 0.2},
	)
	if err != nil {
		t.Fatalf("mixture: %v", err)
	}
	return map[string]Model{
		"rcbr":     NewRCBR(1, 0.3, 1),
		"onoff":    OnOff{PeakRate: 2, OnTime: 0.5, OffTime: 1.5},
		"constant": Constant{Rate: 1.25},
		"mixture":  mix,
	}
}

// TestColumnarMatchesScalar drives every columnar model both ways — per-flow
// Source objects vs InitColumn/AdvanceColumn — over an irregular probe
// schedule and requires bit-identical rates and segment ends at every probe.
func TestColumnarMatchesScalar(t *testing.T) {
	const flows = 257 // not a lane multiple: exercises tail lanes
	probes := []float64{0, 0.01, 0.5, 0.5, 1, 3.75, 10, 10.0001, 40}
	for name, model := range columnarModels(t) {
		t.Run(name, func(t *testing.T) {
			cm, ok := ColumnModelOf(model)
			if !ok {
				t.Fatalf("model %s does not support the columnar path", name)
			}

			// Scalar reference: one source per flow, each on substream i.
			parent := rng.New(0xC01, 7)
			type ref struct {
				src    Source
				rate   float64
				segEnd float64
			}
			refs := make([]ref, flows)
			for i := range refs {
				src := model.New(parent.Split(uint64(i)))
				seg := src.Next()
				refs[i] = ref{src: src, rate: seg.Rate, segEnd: seg.Duration}
			}

			// Columnar: same substreams, same tags.
			parent2 := rng.New(0xC01, 7)
			var c Columns
			c.Grow(flows)
			for i := 0; i < flows; i++ {
				parent2.SplitInto(uint64(i), &c.Str[i])
			}
			cm.InitColumn(&c, 0, flows)

			check := func(stage string) {
				t.Helper()
				for i := range refs {
					if math.Float64bits(refs[i].rate) != math.Float64bits(c.Rate[i]) {
						t.Fatalf("%s: flow %d rate: scalar %x columnar %x",
							stage, i, math.Float64bits(refs[i].rate), math.Float64bits(c.Rate[i]))
					}
					if math.Float64bits(refs[i].segEnd) != math.Float64bits(c.End[i]) {
						t.Fatalf("%s: flow %d segEnd: scalar %v columnar %v",
							stage, i, refs[i].segEnd, c.End[i])
					}
				}
			}
			check("init")

			for _, probe := range probes {
				for i := range refs {
					for refs[i].segEnd <= probe {
						seg := refs[i].src.Next()
						refs[i].rate = seg.Rate
						refs[i].segEnd += seg.Duration
					}
				}
				cm.AdvanceColumn(&c, flows, probe)
				check("t=" + strconv.FormatFloat(probe, 'g', -1, 64))
			}
		})
	}
}

// TestColumnarSwapKeepsStreams pins that Swap moves a flow's whole state —
// including its RNG substream — so compaction in the ensemble engine cannot
// detach a flow from its draws.
func TestColumnarSwapKeepsStreams(t *testing.T) {
	model := NewRCBR(1, 0.3, 1)
	parent := rng.New(0xBEEF, 3)
	var c Columns
	c.Grow(2)
	for i := 0; i < 2; i++ {
		parent.SplitInto(uint64(i), &c.Str[i])
	}
	model.InitColumn(&c, 0, 2)

	// Reference continuation of flow 0's stream.
	ref := rng.New(0xBEEF, 3)
	src0 := model.New(ref.Split(0))
	src0.Next()
	want := src0.Next()

	c.Swap(0, 1)
	// Flow 0 now lives in slot 1; advancing far enough forces a redraw.
	end0 := c.End[1]
	model.AdvanceColumn(&c, 2, end0)
	if c.End[1] <= end0 {
		t.Fatalf("flow 0 did not advance past %v", end0)
	}
	if math.Float64bits(c.Rate[1]) != math.Float64bits(want.Rate) {
		t.Fatalf("flow 0's stream did not travel with the swap: rate %v want %v", c.Rate[1], want.Rate)
	}
}

// TestColumnModelOf pins the gating: plain models and flat mixtures of
// columnar components qualify; nested mixtures and non-columnar components
// do not.
func TestColumnModelOf(t *testing.T) {
	rcbr := NewRCBR(1, 0.3, 1)
	if _, ok := ColumnModelOf(rcbr); !ok {
		t.Error("RCBR should be columnar")
	}
	flat, _ := NewMixture([]Model{rcbr, Constant{Rate: 1}}, []float64{1, 1})
	if _, ok := ColumnModelOf(flat); !ok {
		t.Error("flat mixture of columnar components should be columnar")
	}
	nested, _ := NewMixture([]Model{flat, rcbr}, []float64{1, 1})
	if _, ok := ColumnModelOf(nested); ok {
		t.Error("nested mixture must not qualify for the columnar path")
	}
	mf, err := NewMarkovFluid([]float64{1, 2}, [][]float64{{-1, 1}, {1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ColumnModelOf(mf); ok {
		t.Error("MarkovFluid has no columnar path and must not qualify")
	}
	mixMF, _ := NewMixture([]Model{rcbr, mf}, []float64{1, 1})
	if _, ok := ColumnModelOf(mixMF); ok {
		t.Error("mixture with a non-columnar component must not qualify")
	}
}
