package traffic

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewMixtureValidation(t *testing.T) {
	a := NewRCBR(1, 0.3, 1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Model{a}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewMixture([]Model{a}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Model{a}, []float64{0}); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestMixtureStatsLawOfTotalVariance(t *testing.T) {
	// Two constant-rate classes 1 and 3 with weights 0.5/0.5:
	// mean 2, within-class var 0, between-class var 1.
	m, err := NewMixture([]Model{Constant{Rate: 1}, Constant{Rate: 3}}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if math.Abs(s.Mean-2) > 1e-12 || math.Abs(s.Variance-1) > 1e-12 {
		t.Errorf("stats = %+v, want mean 2 var 1", s)
	}
	if m.WithinClassVariance() != 0 {
		t.Errorf("within-class var = %v", m.WithinClassVariance())
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	m, err := NewMixture([]Model{Constant{Rate: 1}, Constant{Rate: 3}}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Weights normalize to 0.25/0.75 -> mean 2.5.
	if math.Abs(m.Stats().Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v", m.Stats().Mean)
	}
}

func TestMixtureEmpirical(t *testing.T) {
	big := NewRCBR(2, 0.3, 1)
	small := NewRCBR(0.5, 0.3, 1)
	m, err := NewMixture([]Model{big, small}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Stats()
	// Sample many flows' stationary rates (first segment of each flow).
	base := rng.New(77, 0)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		rate := m.New(base.Split(uint64(i))).Next().Rate
		sum += rate
		sumSq += rate * rate
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-want.Mean)/want.Mean > 0.01 {
		t.Errorf("empirical mean %v vs %v", mean, want.Mean)
	}
	if math.Abs(variance-want.Variance)/want.Variance > 0.05 {
		t.Errorf("empirical var %v vs %v", variance, want.Variance)
	}
	// Heterogeneity bias: population variance strictly exceeds
	// within-class variance.
	if want.Variance <= m.WithinClassVariance() {
		t.Errorf("population var %v should exceed within-class %v",
			want.Variance, m.WithinClassVariance())
	}
}

func TestMixtureComponentPersistsPerFlow(t *testing.T) {
	// A flow drawn from the {1, 3} constant mixture must emit the same rate
	// forever (the class is chosen once, not per segment).
	m, _ := NewMixture([]Model{Constant{Rate: 1}, Constant{Rate: 3}}, []float64{1, 1})
	base := rng.New(5, 0)
	for i := 0; i < 20; i++ {
		src := m.New(base.Split(uint64(i)))
		first := src.Next().Rate
		for j := 0; j < 5; j++ {
			if src.Next().Rate != first {
				t.Fatal("component changed mid-flow")
			}
		}
	}
}
