// Columnar (struct-of-arrays) flow state. The ensemble engines advance
// thousands of independent flows per replication; with one Source object per
// flow every segment draw pays an interface dispatch, and — worse — each
// flow's draw chain (normal → log → compare → next draw) is serially
// dependent, so the CPU idles on the ~70-cycle log latency. Laying the flow
// state out in parallel columns lets a model advance several flows in
// interleaved lanes: the lanes' draw chains are independent (each flow owns
// its RNG substream), so the out-of-order window overlaps their logs and the
// per-segment cost drops from the latency of one chain to the throughput of
// many.
//
// Bit-identity contract: for every model, InitColumn and AdvanceColumn
// consume exactly the draws that Model.New and Source.Next would consume
// from each flow's substream, and produce the same (rate, segment-end)
// values. Interleaving is safe because no draws cross flows. The
// differential tests in columns_test.go and the engine-level test in
// internal/sim pin this equivalence per model.
package traffic

import (
	"math"

	"repro/internal/rng"
)

// Columns is the struct-of-arrays state of a batch of flows drawn from one
// model. All slices are parallel, indexed by flow slot. Rate and End mirror
// a scalar source's current Segment (End is the segment's absolute end time
// for a flow started at time zero); State and Aux are model-private words
// (on/off phase, mixture component); Str holds each flow's RNG substream
// in place so deriving a flow performs no allocation.
type Columns struct {
	Rate  []float64
	End   []float64
	State []uint32
	Aux   []uint32
	Str   []rng.PCG
}

// Grow extends the columns to at least n slots, preserving existing
// contents. Newly exposed slots hold stale garbage; callers must initialize
// them (SplitInto + InitColumn) before use.
func (c *Columns) Grow(n int) {
	c.Rate = growCol(c.Rate, n)
	c.End = growCol(c.End, n)
	c.State = growCol(c.State, n)
	c.Aux = growCol(c.Aux, n)
	c.Str = growCol(c.Str, n)
}

// Swap exchanges flow slots i and j across every column.
func (c *Columns) Swap(i, j int) {
	c.Rate[i], c.Rate[j] = c.Rate[j], c.Rate[i]
	c.End[i], c.End[j] = c.End[j], c.End[i]
	c.State[i], c.State[j] = c.State[j], c.State[i]
	c.Aux[i], c.Aux[j] = c.Aux[j], c.Aux[i]
	c.Str[i], c.Str[j] = c.Str[j], c.Str[i]
}

func growCol[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	out := make([]T, n, max(n, 2*cap(s)))
	copy(out, s)
	return out
}

// ColumnModel is an optional Model capability: a model that can initialize
// and advance flows directly in Columns, with no per-flow Source object.
//
// Both methods must consume, per flow, exactly the substream draws that
// Model.New followed by Source.Next calls would consume, and leave the same
// rate/segment-end values — the columnar engines rely on this to be
// bit-identical to the scalar path. Draws always come from the flow's own
// c.Str slot, never from a shared stream, so flows may be processed in any
// order and in interleaved lanes.
type ColumnModel interface {
	Model
	// InitColumn performs the construction-time draws and the first-segment
	// draw for flows [lo, hi): afterwards Rate[i] and End[i] describe flow
	// i's first segment (End relative to a start at time zero) and any
	// model state is recorded in State[i]/Aux[i].
	InitColumn(c *Columns, lo, hi int)
	// AdvanceColumn advances every flow i in [0, n) with End[i] <= t
	// through successive segments until End[i] > t, exactly as the scalar
	// loop `for segEnd <= t { seg := src.Next(); ... }` would.
	AdvanceColumn(c *Columns, n int, t float64)
}

// ColumnModelOf reports whether m supports the columnar path, returning the
// capability when it does. It exists because a composite model can only run
// columnar when its parts do: a Mixture qualifies iff every component is
// itself columnar and not a nested mixture (components borrow the State
// word, mixtures own Aux, so one level of nesting is the limit).
func ColumnModelOf(m Model) (ColumnModel, bool) {
	cm, ok := m.(ColumnModel)
	if !ok {
		return nil, false
	}
	if mx, isMix := m.(*Mixture); isMix {
		for _, comp := range mx.Models {
			if _, nested := comp.(*Mixture); nested {
				return nil, false
			}
			if _, ok := ColumnModelOf(comp); !ok {
				return nil, false
			}
		}
	}
	return cm, true
}

// ---------------------------------------------------------------------------
// RCBR columnar kernel.

// InitColumn implements ColumnModel: per flow, the same (truncated-normal
// rate, exponential duration) pair New+Next would draw. Setting End to zero
// and advancing to t = 0 reproduces exactly that one draw pair, because
// exponential durations are strictly positive.
//
// The heavy lifting is rng.SegmentAdvance, the batched renewal-chain
// sampler: it interleaves several flows' draw chains in lanes (each flow
// owns its substream, so chains are independent and their log latencies
// overlap) with the whole per-segment path inlined into one loop body. A
// flow's own draw order (rate, then duration, segment by segment) is
// untouched, which is what bit-identity requires.
func (m RCBR) InitColumn(c *Columns, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.End[i] = 0
	}
	rng.SegmentAdvance(c.Str, c.Rate, c.End, lo, hi, m.Mean, m.Sigma, 0, m.CorrTime, 0)
}

// AdvanceColumn implements ColumnModel.
func (m RCBR) AdvanceColumn(c *Columns, n int, t float64) {
	rng.SegmentAdvance(c.Str, c.Rate, c.End, 0, n, m.Mean, m.Sigma, 0, m.CorrTime, t)
}

// ---------------------------------------------------------------------------
// On-off columnar path.

const onOffOn = 1 // State bit 0: the state the NEXT segment will emit in

// InitColumn implements ColumnModel: the stationary initial-state draw New
// performs, then the first segment.
func (m OnOff) InitColumn(c *Columns, lo, hi int) {
	pOn := m.OnTime / (m.OnTime + m.OffTime)
	for i := lo; i < hi; i++ {
		r := &c.Str[i]
		on := r.Float64() < pOn
		var rate, d float64
		if on {
			rate, d = m.PeakRate, r.Exp(m.OnTime)
		} else {
			rate, d = 0, r.Exp(m.OffTime)
		}
		state := uint32(0)
		if !on { // toggled: next segment is the opposite phase
			state = onOffOn
		}
		c.Rate[i], c.End[i], c.State[i] = rate, d, state
	}
}

// AdvanceColumn implements ColumnModel. Segments are cheap here (one
// exponential each, no rate draw), so a simple per-flow loop suffices.
func (m OnOff) AdvanceColumn(c *Columns, n int, t float64) {
	for i := 0; i < n; i++ {
		e := c.End[i]
		if e > t {
			continue
		}
		r := &c.Str[i]
		on := c.State[i]&onOffOn != 0
		var rate float64
		for {
			var d float64
			if on {
				rate, d = m.PeakRate, r.Exp(m.OnTime)
			} else {
				rate, d = 0, r.Exp(m.OffTime)
			}
			on = !on
			e += d
			if e > t {
				break
			}
		}
		state := uint32(0)
		if on {
			state = onOffOn
		}
		c.Rate[i], c.End[i], c.State[i] = rate, e, state
	}
}

// ---------------------------------------------------------------------------
// Constant columnar path.

// InitColumn implements ColumnModel. No draws are consumed, matching New.
func (m Constant) InitColumn(c *Columns, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.Rate[i], c.End[i] = m.Rate, math.MaxFloat64/4
	}
}

// AdvanceColumn implements ColumnModel. Reachable only for absurd probe
// times, but kept exact: the scalar source re-issues MaxFloat64/4 chunks.
func (m Constant) AdvanceColumn(c *Columns, n int, t float64) {
	for i := 0; i < n; i++ {
		for c.End[i] <= t {
			c.Rate[i] = m.Rate
			c.End[i] += math.MaxFloat64 / 4
		}
	}
}

// ---------------------------------------------------------------------------
// Mixture columnar path: per-flow delegation to the chosen component.

// InitColumn implements ColumnModel: the component pick consumes one
// uniform from the flow's substream — exactly Mixture.New — and the pick is
// recorded in Aux so later advances route to the same component. The
// component then initializes the flow through a one-slot view of the
// columns; it may use State freely (Aux belongs to the mixture).
// ColumnModelOf gates this path to mixtures of non-mixture ColumnModels.
func (m *Mixture) InitColumn(c *Columns, lo, hi int) {
	for i := lo; i < hi; i++ {
		u := c.Str[i].Float64()
		k := len(m.Weights) - 1
		var cum float64
		for j, w := range m.Weights {
			cum += w
			if u < cum {
				k = j
				break
			}
		}
		c.Aux[i] = uint32(k)
		view := c.view(i)
		m.Models[k].(ColumnModel).InitColumn(&view, 0, 1)
	}
}

// AdvanceColumn implements ColumnModel.
func (m *Mixture) AdvanceColumn(c *Columns, n int, t float64) {
	for i := 0; i < n; i++ {
		if c.End[i] > t {
			continue
		}
		view := c.view(i)
		m.Models[c.Aux[i]].(ColumnModel).AdvanceColumn(&view, 1, t)
	}
}

// view is a one-flow window onto slot i, through which a mixture component
// operates on exactly that flow. Aux is withheld: it carries the mixture's
// own component index.
func (c *Columns) view(i int) Columns {
	return Columns{
		Rate:  c.Rate[i : i+1 : i+1],
		End:   c.End[i : i+1 : i+1],
		State: c.State[i : i+1 : i+1],
		Aux:   nil,
		Str:   c.Str[i : i+1 : i+1],
	}
}
