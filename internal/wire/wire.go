// Package wire defines the framed binary protocol of the MBAC serving
// layer: the encoding spoken between the public client package and
// internal/server. The design goals mirror the admission hot path behind
// it — a decision costs ~110 ns in-process, so the wire format must not
// dominate it with parsing or garbage:
//
//   - frames are length-prefixed and fixed-layout, so a reader never
//     scans for delimiters and a decode is a handful of loads;
//   - encoding appends to a caller scratch buffer and decoding parses
//     into a caller-owned Frame whose slices are reused across calls, so
//     the steady state of both sides is allocation-free;
//   - every request carries a caller-chosen request ID, so a client can
//     pipeline arbitrarily many requests on one connection and correlate
//     responses out of band — which is also what lets the server batch
//     consecutive Admit frames into one Gateway.AdmitBatch call.
//
// # Frame layout
//
// All integers are big-endian; floats are IEEE-754 bit patterns.
//
//	uint32  length   payload length (everything after this field)
//	uint8   version  protocol version (Version)
//	uint8   op       Op
//	uint64  reqID    request ID, echoed verbatim in the response
//	...              op-specific payload (see below)
//
// Request payloads:
//
//	Admit       flow uint64, rate float64
//	AdmitBatch  count uint16, then count × (flow uint64, rate float64)
//	UpdateRate  flow uint64, rate float64
//	Touch       flow uint64
//	Depart      flow uint64
//	Ping        (empty)
//
// Response payloads:
//
//	Decision       reason uint8, admissible float64, active int64
//	DecisionBatch  count uint16, then count × decision (as above)
//	Ack            status uint8
//	Pong           (empty)
//	Refusal        refusal uint8
//
// The decision reason byte is the numeric value of gateway.Reason — the
// server passes the gateway's own classification through unchanged. A
// Refusal with request ID zero is connection-scoped (the server is
// refusing the connection, not one request): overloaded at accept,
// draining, rate-capped, or shedding a slow reader.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version byte carried by every frame.
const Version = 1

// Limits enforced by Decode and the Reader. MaxFrame bounds the payload
// of a single frame (a length prefix beyond it is a protocol error, not
// an allocation request), and MaxBatch bounds the item count of an
// AdmitBatch/DecisionBatch frame.
const (
	MaxFrame = 1 << 20
	MaxBatch = 8192
)

// headerLen is the fixed payload prefix: version, op, reqID.
const headerLen = 1 + 1 + 8

// decisionLen is the wire size of one Decision.
const decisionLen = 1 + 8 + 8

// Op identifies the frame type.
type Op uint8

// Frame ops. Requests and responses share one numbering space; the zero
// value is invalid so an all-zero frame never decodes.
const (
	// OpAdmit requests admission of one flow at a declared rate.
	OpAdmit Op = iota + 1
	// OpAdmitBatch requests admission of several flows in one frame.
	OpAdmitBatch
	// OpUpdateRate reports a flow's measured/renegotiated rate.
	OpUpdateRate
	// OpTouch refreshes a flow's lease without changing its rate.
	OpTouch
	// OpDepart removes an active flow.
	OpDepart
	// OpPing is a liveness/RTT probe.
	OpPing
	// OpDecision answers an Admit.
	OpDecision
	// OpDecisionBatch answers an AdmitBatch, one decision per item.
	OpDecisionBatch
	// OpAck answers UpdateRate, Touch and Depart with a Status.
	OpAck
	// OpPong answers a Ping.
	OpPong
	// OpRefusal tells the peer a request (reqID ≠ 0) or the whole
	// connection (reqID 0) was refused, with a Refusal reason.
	OpRefusal
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAdmit:
		return "admit"
	case OpAdmitBatch:
		return "admit-batch"
	case OpUpdateRate:
		return "update-rate"
	case OpTouch:
		return "touch"
	case OpDepart:
		return "depart"
	case OpPing:
		return "ping"
	case OpDecision:
		return "decision"
	case OpDecisionBatch:
		return "decision-batch"
	case OpAck:
		return "ack"
	case OpPong:
		return "pong"
	case OpRefusal:
		return "refusal"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp is the inverse of Op.String, for CLI and test tooling.
func ParseOp(s string) (Op, error) {
	for o := OpAdmit; o <= OpRefusal; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown op %q", s)
}

// Status classifies the outcome of an acknowledged request (UpdateRate,
// Touch, Depart).
type Status uint8

// Ack statuses.
const (
	// StatusOK: the request was applied.
	StatusOK Status = iota
	// StatusNotActive: the flow is not currently admitted.
	StatusNotActive
	// StatusInvalidRate: the rate was negative, NaN or infinite.
	StatusInvalidRate
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotActive:
		return "not-active"
	case StatusInvalidRate:
		return "invalid-rate"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ParseStatus is the inverse of Status.String.
func ParseStatus(s string) (Status, error) {
	for st := StatusOK; st <= StatusInvalidRate; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown status %q", s)
}

// Refusal classifies why the server refused a request or connection —
// the serving-layer analogue of the gateway's capacity Reason, except
// these are resource-protection refusals of the server itself, not
// admission-control decisions.
type Refusal uint8

// Refusal reasons. The zero value is invalid so a Refusal frame always
// carries an explicit cause.
const (
	// RefuseOverloaded: the server is at its max-connection limit.
	RefuseOverloaded Refusal = iota + 1
	// RefuseDraining: the server is shutting down gracefully.
	RefuseDraining
	// RefuseRateLimited: the connection exceeded its frame-rate cap.
	RefuseRateLimited
	// RefuseSlowClient: the connection's response backlog exceeded the
	// write-buffer budget and the server shed it.
	RefuseSlowClient
	// RefuseProtocol: the peer sent a malformed or oversized frame.
	RefuseProtocol
)

// String implements fmt.Stringer.
func (r Refusal) String() string {
	switch r {
	case RefuseOverloaded:
		return "overloaded"
	case RefuseDraining:
		return "draining"
	case RefuseRateLimited:
		return "rate-limited"
	case RefuseSlowClient:
		return "slow-client"
	case RefuseProtocol:
		return "protocol"
	}
	return fmt.Sprintf("Refusal(%d)", int(r))
}

// ParseRefusal is the inverse of Refusal.String.
func ParseRefusal(s string) (Refusal, error) {
	for r := RefuseOverloaded; r <= RefuseProtocol; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown refusal %q", s)
}

// Decision is the wire form of one admission decision. Reason is the
// numeric value of gateway.Reason; Admissible and Active mirror the
// gateway Decision fields.
type Decision struct {
	Reason     uint8
	Admissible float64
	Active     int64
}

// Frame is the decoded form of one protocol frame. Decode fills only the
// fields meaningful for the decoded op and reuses the receiver's slices,
// so a Frame held across calls decodes batches allocation-free once its
// slice capacities have warmed up.
type Frame struct {
	Version byte
	Op      Op
	ReqID   uint64

	Flow    uint64  // Admit, UpdateRate, Touch, Depart
	Rate    float64 // Admit, UpdateRate
	Status  Status  // Ack
	Refusal Refusal // Refusal

	Decision  Decision   // Decision
	Flows     []uint64   // AdmitBatch
	Rates     []float64  // AdmitBatch
	Decisions []Decision // DecisionBatch
}

// appendHeader appends the length prefix and the fixed payload prefix for
// a frame whose op-specific payload is extra bytes long.
func appendHeader(dst []byte, extra int, op Op, reqID uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+extra))
	dst = append(dst, Version, byte(op))
	return binary.BigEndian.AppendUint64(dst, reqID)
}

// AppendAdmit appends an Admit request frame to dst and returns the
// extended slice. All Append functions encode the complete frame,
// length prefix included, and never allocate beyond growing dst.
func AppendAdmit(dst []byte, reqID, flow uint64, rate float64) []byte {
	dst = appendHeader(dst, 16, OpAdmit, reqID)
	dst = binary.BigEndian.AppendUint64(dst, flow)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(rate))
}

// AppendAdmitBatch appends an AdmitBatch request frame covering
// flows/rates (which must be equal-length and at most MaxBatch items).
func AppendAdmitBatch(dst []byte, reqID uint64, flows []uint64, rates []float64) ([]byte, error) {
	if len(flows) != len(rates) {
		return dst, fmt.Errorf("wire: batch length mismatch: %d flows, %d rates", len(flows), len(rates))
	}
	if len(flows) == 0 || len(flows) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d items outside [1, %d]", len(flows), MaxBatch)
	}
	dst = appendHeader(dst, 2+16*len(flows), OpAdmitBatch, reqID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(flows)))
	for i, f := range flows {
		dst = binary.BigEndian.AppendUint64(dst, f)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rates[i]))
	}
	return dst, nil
}

// AppendUpdateRate appends an UpdateRate request frame.
func AppendUpdateRate(dst []byte, reqID, flow uint64, rate float64) []byte {
	dst = appendHeader(dst, 16, OpUpdateRate, reqID)
	dst = binary.BigEndian.AppendUint64(dst, flow)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(rate))
}

// AppendTouch appends a Touch request frame.
func AppendTouch(dst []byte, reqID, flow uint64) []byte {
	dst = appendHeader(dst, 8, OpTouch, reqID)
	return binary.BigEndian.AppendUint64(dst, flow)
}

// AppendDepart appends a Depart request frame.
func AppendDepart(dst []byte, reqID, flow uint64) []byte {
	dst = appendHeader(dst, 8, OpDepart, reqID)
	return binary.BigEndian.AppendUint64(dst, flow)
}

// AppendPing appends a Ping request frame.
func AppendPing(dst []byte, reqID uint64) []byte {
	return appendHeader(dst, 0, OpPing, reqID)
}

// appendDecisionBody appends the 17-byte body of one decision.
func appendDecisionBody(dst []byte, d Decision) []byte {
	dst = append(dst, d.Reason)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Admissible))
	return binary.BigEndian.AppendUint64(dst, uint64(d.Active))
}

// AppendDecision appends a Decision response frame.
func AppendDecision(dst []byte, reqID uint64, d Decision) []byte {
	dst = appendHeader(dst, decisionLen, OpDecision, reqID)
	return appendDecisionBody(dst, d)
}

// AppendDecisionBatch appends a DecisionBatch response frame.
func AppendDecisionBatch(dst []byte, reqID uint64, ds []Decision) ([]byte, error) {
	if len(ds) == 0 || len(ds) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d decisions outside [1, %d]", len(ds), MaxBatch)
	}
	dst = appendHeader(dst, 2+decisionLen*len(ds), OpDecisionBatch, reqID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ds)))
	for _, d := range ds {
		dst = appendDecisionBody(dst, d)
	}
	return dst, nil
}

// AppendAck appends an Ack response frame.
func AppendAck(dst []byte, reqID uint64, st Status) []byte {
	dst = appendHeader(dst, 1, OpAck, reqID)
	return append(dst, byte(st))
}

// AppendPong appends a Pong response frame.
func AppendPong(dst []byte, reqID uint64) []byte {
	return appendHeader(dst, 0, OpPong, reqID)
}

// AppendRefusal appends a Refusal response frame. reqID 0 scopes the
// refusal to the connection rather than one request.
func AppendRefusal(dst []byte, reqID uint64, r Refusal) []byte {
	dst = appendHeader(dst, 1, OpRefusal, reqID)
	return append(dst, byte(r))
}

// Decode parses one frame payload (the bytes after the length prefix)
// into f, reusing f's slices. It rejects unknown versions and ops, trailing
// or missing bytes, and batch counts outside [1, MaxBatch] — a frame either
// decodes completely and canonically or not at all, which is what makes
// the encode/decode round trip byte-exact (see FuzzFrameDecode).
func (f *Frame) Decode(p []byte) error {
	if len(p) < headerLen {
		return fmt.Errorf("wire: frame of %d bytes shorter than the %d-byte header", len(p), headerLen)
	}
	if p[0] != Version {
		return fmt.Errorf("wire: version %d, want %d", p[0], Version)
	}
	f.Version = p[0]
	f.Op = Op(p[1])
	f.ReqID = binary.BigEndian.Uint64(p[2:])
	body := p[headerLen:]
	switch f.Op {
	case OpAdmit, OpUpdateRate:
		if len(body) != 16 {
			return fmt.Errorf("wire: %v payload is %d bytes, want 16", f.Op, len(body))
		}
		f.Flow = binary.BigEndian.Uint64(body)
		f.Rate = math.Float64frombits(binary.BigEndian.Uint64(body[8:]))
	case OpTouch, OpDepart:
		if len(body) != 8 {
			return fmt.Errorf("wire: %v payload is %d bytes, want 8", f.Op, len(body))
		}
		f.Flow = binary.BigEndian.Uint64(body)
	case OpPing, OpPong:
		if len(body) != 0 {
			return fmt.Errorf("wire: %v payload is %d bytes, want 0", f.Op, len(body))
		}
	case OpAdmitBatch:
		n, err := batchCount(f.Op, body, 16)
		if err != nil {
			return err
		}
		f.Flows = f.Flows[:0]
		f.Rates = f.Rates[:0]
		for i := 0; i < n; i++ {
			item := body[2+16*i:]
			f.Flows = append(f.Flows, binary.BigEndian.Uint64(item))
			f.Rates = append(f.Rates, math.Float64frombits(binary.BigEndian.Uint64(item[8:])))
		}
	case OpDecision:
		if len(body) != decisionLen {
			return fmt.Errorf("wire: %v payload is %d bytes, want %d", f.Op, len(body), decisionLen)
		}
		f.Decision = decodeDecision(body)
	case OpDecisionBatch:
		n, err := batchCount(f.Op, body, decisionLen)
		if err != nil {
			return err
		}
		f.Decisions = f.Decisions[:0]
		for i := 0; i < n; i++ {
			f.Decisions = append(f.Decisions, decodeDecision(body[2+decisionLen*i:]))
		}
	case OpAck:
		if len(body) != 1 {
			return fmt.Errorf("wire: %v payload is %d bytes, want 1", f.Op, len(body))
		}
		f.Status = Status(body[0])
		if f.Status > StatusInvalidRate {
			return fmt.Errorf("wire: unknown status %d", body[0])
		}
	case OpRefusal:
		if len(body) != 1 {
			return fmt.Errorf("wire: %v payload is %d bytes, want 1", f.Op, len(body))
		}
		f.Refusal = Refusal(body[0])
		if f.Refusal < RefuseOverloaded || f.Refusal > RefuseProtocol {
			return fmt.Errorf("wire: unknown refusal %d", body[0])
		}
	default:
		return fmt.Errorf("wire: unknown op %d", p[1])
	}
	return nil
}

// batchCount validates a batch payload (uint16 count + count fixed-size
// items) and returns the count.
func batchCount(op Op, body []byte, itemLen int) (int, error) {
	if len(body) < 2 {
		return 0, fmt.Errorf("wire: %v payload is %d bytes, want at least 2", op, len(body))
	}
	n := int(binary.BigEndian.Uint16(body))
	if n == 0 || n > MaxBatch {
		return 0, fmt.Errorf("wire: %v count %d outside [1, %d]", op, n, MaxBatch)
	}
	if len(body) != 2+itemLen*n {
		return 0, fmt.Errorf("wire: %v payload is %d bytes, want %d for %d items", op, len(body), 2+itemLen*n, n)
	}
	return n, nil
}

// decodeDecision parses one 17-byte decision body.
func decodeDecision(p []byte) Decision {
	return Decision{
		Reason:     p[0],
		Admissible: math.Float64frombits(binary.BigEndian.Uint64(p[1:])),
		Active:     int64(binary.BigEndian.Uint64(p[9:])),
	}
}

// Reader decodes frames from a byte stream, owning the buffering so the
// steady state reads and decodes without allocating. It is not safe for
// concurrent use; each connection side owns exactly one Reader.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads one frame from the stream and decodes it into f. It returns
// io.EOF only on a clean frame boundary; a partial frame surfaces as
// io.ErrUnexpectedEOF.
//
// Frames that fit the internal buffer (the overwhelmingly common case)
// decode straight out of it via Peek/Discard — no per-frame allocation,
// no copy. Decode never retains the payload, so discarding after the
// decode is safe.
func (r *Reader) Next(f *Frame) error {
	// Fast path: the frame is already complete in the buffer — one peek
	// over the buffered region, one decode, one discard. This is the
	// steady state on both sides of a pipelined connection, where whole
	// bursts of frames land in the buffer per socket read.
	if buffered := r.br.Buffered(); buffered >= 4 {
		p, _ := r.br.Peek(buffered) // cannot fail: peek of what is buffered
		n := int(binary.BigEndian.Uint32(p))
		if n < headerLen || n > MaxFrame {
			return fmt.Errorf("wire: frame length %d outside [%d, %d]", n, headerLen, MaxFrame)
		}
		if 4+n <= buffered {
			err := f.Decode(p[4 : 4+n])
			r.br.Discard(4 + n)
			return err
		}
	}
	hdr, err := r.br.Peek(4)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			return io.ErrUnexpectedEOF // partial length prefix
		}
		return err
	}
	n := int(binary.BigEndian.Uint32(hdr))
	if n < headerLen || n > MaxFrame {
		return fmt.Errorf("wire: frame length %d outside [%d, %d]", n, headerLen, MaxFrame)
	}
	r.br.Discard(4)
	if n <= r.br.Size() {
		p, err := r.br.Peek(n)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		err = f.Decode(p)
		r.br.Discard(n)
		return err
	}
	// A frame larger than the buffer: assemble it in the Reader's scratch.
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return f.Decode(r.buf)
}

// admitFrameLen is the full wire size of one Admit frame: length prefix,
// header, flow, rate. Admit frames are fixed-size, which is what makes
// the burst decoder a straight-line walk.
const admitFrameLen = 4 + headerLen + 16

// AdmitBurst is the landing zone of the vectorized Admit decoder: three
// parallel slices, one entry per decoded Admit frame, laid out exactly the
// way gateway.AdmitBatch wants its arguments. The server aliases its
// per-connection batching scratch to one of these, so a pipelined run of
// Admit frames travels from the socket buffer into the admission batch
// with zero intermediate Frame structs.
type AdmitBurst struct {
	ReqIDs []uint64
	Flows  []uint64
	Rates  []float64
}

// Len returns the number of buffered admits.
func (b *AdmitBurst) Len() int { return len(b.ReqIDs) }

// Reset empties the burst, keeping capacity.
func (b *AdmitBurst) Reset() {
	b.ReqIDs = b.ReqIDs[:0]
	b.Flows = b.Flows[:0]
	b.Rates = b.Rates[:0]
}

// NextAdmitBurst vectorizes the generic Next loop for the serving hot
// path: it peeks the Reader's entire buffered region once and walks the
// run of complete, well-formed Admit frames at its front, appending
// (reqID, flow, rate) straight into b — no Frame struct, no per-frame
// Peek/Discard, one length/version/op check per frame. It consumes only
// frames that Next would have decoded identically (exact Admit length,
// current version, OpAdmit) and stops — leaving the stream positioned for
// Next — at the first frame that is anything else: a non-Admit op, a
// malformed or truncated frame, a partial length prefix. That structural
// property is what the differential tests pin: interleaving the two
// decoders in any order over any byte stream yields the same admits, the
// same frames, and the same errors. It never reads the underlying stream
// and never allocates beyond growing b; at most max admits are appended
// (max <= 0 decodes nothing). Returns the number appended.
func (r *Reader) NextAdmitBurst(b *AdmitBurst, max int) int {
	buffered := r.br.Buffered()
	if max <= 0 || buffered < admitFrameLen {
		return 0
	}
	p, err := r.br.Peek(buffered)
	if err != nil {
		return 0
	}
	n := 0
	for n < max && len(p) >= admitFrameLen {
		if binary.BigEndian.Uint32(p) != headerLen+16 || p[4] != Version || p[5] != byte(OpAdmit) {
			break
		}
		b.ReqIDs = append(b.ReqIDs, binary.BigEndian.Uint64(p[6:]))
		b.Flows = append(b.Flows, binary.BigEndian.Uint64(p[14:]))
		b.Rates = append(b.Rates, math.Float64frombits(binary.BigEndian.Uint64(p[22:])))
		p = p[admitFrameLen:]
		n++
	}
	if n > 0 {
		r.br.Discard(n * admitFrameLen)
	}
	return n
}

// departFrameLen is the full wire size of one Depart frame: length
// prefix, header, flow. Like Admit frames, Depart frames are fixed-size,
// so a pipelined run of them vectorizes the same way.
const departFrameLen = 4 + headerLen + 8

// DepartBurst is the landing zone of the vectorized Depart decoder: two
// parallel slices laid out the way gateway.DepartBatch wants its
// arguments, the departure twin of AdmitBurst.
type DepartBurst struct {
	ReqIDs []uint64
	Flows  []uint64
}

// Len returns the number of buffered departs.
func (b *DepartBurst) Len() int { return len(b.ReqIDs) }

// Reset empties the burst, keeping capacity.
func (b *DepartBurst) Reset() {
	b.ReqIDs = b.ReqIDs[:0]
	b.Flows = b.Flows[:0]
}

// NextDepartBurst is NextAdmitBurst for Depart frames: it walks the run of
// complete, well-formed Depart frames at the front of the buffer,
// appending (reqID, flow) straight into b, and stops at the first frame
// that is anything else — including a Touch frame, which shares the Depart
// payload length and differs only in the op byte. The same structural
// contract applies: it consumes exactly the frames Next would have decoded
// identically, never reads the underlying stream, and never allocates
// beyond growing b. Returns the number appended (at most max).
func (r *Reader) NextDepartBurst(b *DepartBurst, max int) int {
	buffered := r.br.Buffered()
	if max <= 0 || buffered < departFrameLen {
		return 0
	}
	p, err := r.br.Peek(buffered)
	if err != nil {
		return 0
	}
	n := 0
	for n < max && len(p) >= departFrameLen {
		if binary.BigEndian.Uint32(p) != headerLen+8 || p[4] != Version || p[5] != byte(OpDepart) {
			break
		}
		b.ReqIDs = append(b.ReqIDs, binary.BigEndian.Uint64(p[6:]))
		b.Flows = append(b.Flows, binary.BigEndian.Uint64(p[14:]))
		p = p[departFrameLen:]
		n++
	}
	if n > 0 {
		r.br.Discard(n * departFrameLen)
	}
	return n
}

// decisionFrameLen and ackFrameLen are the full wire sizes of the two
// fixed-size response frames, for the response-side burst decoders below.
const (
	decisionFrameLen = 4 + headerLen + decisionLen
	ackFrameLen      = 4 + headerLen + 1
)

// DecisionBurst is the landing zone of the vectorized Decision decoder —
// the client-side twin of AdmitBurst, for reading back a pipelined run of
// decisions without a Frame struct per response.
type DecisionBurst struct {
	ReqIDs    []uint64
	Decisions []Decision
}

// Len returns the number of buffered decisions.
func (b *DecisionBurst) Len() int { return len(b.ReqIDs) }

// Reset empties the burst, keeping capacity.
func (b *DecisionBurst) Reset() {
	b.ReqIDs = b.ReqIDs[:0]
	b.Decisions = b.Decisions[:0]
}

// NextDecisionBurst walks the run of complete, well-formed Decision frames
// at the front of the buffer, appending (reqID, decision) to b. The same
// structural contract as NextAdmitBurst: it consumes exactly the frames
// Next would have decoded identically and stops at anything else, never
// reading the underlying stream. Returns the number appended (at most max).
func (r *Reader) NextDecisionBurst(b *DecisionBurst, max int) int {
	buffered := r.br.Buffered()
	if max <= 0 || buffered < decisionFrameLen {
		return 0
	}
	p, err := r.br.Peek(buffered)
	if err != nil {
		return 0
	}
	n := 0
	for n < max && len(p) >= decisionFrameLen {
		if binary.BigEndian.Uint32(p) != headerLen+decisionLen || p[4] != Version || p[5] != byte(OpDecision) {
			break
		}
		b.ReqIDs = append(b.ReqIDs, binary.BigEndian.Uint64(p[6:]))
		b.Decisions = append(b.Decisions, decodeDecision(p[14:]))
		p = p[decisionFrameLen:]
		n++
	}
	if n > 0 {
		r.br.Discard(n * decisionFrameLen)
	}
	return n
}

// AckBurst is the landing zone of the vectorized Ack decoder, for reading
// back a pipelined run of UpdateRate/Touch/Depart acknowledgements.
type AckBurst struct {
	ReqIDs   []uint64
	Statuses []Status
}

// Len returns the number of buffered acks.
func (b *AckBurst) Len() int { return len(b.ReqIDs) }

// Reset empties the burst, keeping capacity.
func (b *AckBurst) Reset() {
	b.ReqIDs = b.ReqIDs[:0]
	b.Statuses = b.Statuses[:0]
}

// NextAckBurst walks the run of complete, well-formed Ack frames at the
// front of the buffer, appending (reqID, status) to b. An Ack whose status
// byte is out of range is left unconsumed — the generic Next rejects it,
// and the burst decoder must consume only what Next would have decoded
// identically. Returns the number appended (at most max).
func (r *Reader) NextAckBurst(b *AckBurst, max int) int {
	buffered := r.br.Buffered()
	if max <= 0 || buffered < ackFrameLen {
		return 0
	}
	p, err := r.br.Peek(buffered)
	if err != nil {
		return 0
	}
	n := 0
	for n < max && len(p) >= ackFrameLen {
		if binary.BigEndian.Uint32(p) != headerLen+1 || p[4] != Version || p[5] != byte(OpAck) ||
			p[14] > byte(StatusInvalidRate) {
			break
		}
		b.ReqIDs = append(b.ReqIDs, binary.BigEndian.Uint64(p[6:]))
		b.Statuses = append(b.Statuses, Status(p[14]))
		p = p[ackFrameLen:]
		n++
	}
	if n > 0 {
		r.br.Discard(n * ackFrameLen)
	}
	return n
}

// NextBuffered decodes the next frame only if it is already complete in
// the buffer: ok reports whether a frame (or a malformed length prefix,
// which Next would also reject without blocking) was consumed. It never
// touches the underlying stream, so the server's read loop can drain a
// pipelined burst — FrameBuffered check and decode fused into one peek —
// and fall back to the blocking Next only when ok is false.
func (r *Reader) NextBuffered(f *Frame) (ok bool, err error) {
	buffered := r.br.Buffered()
	if buffered < 4 {
		return false, nil
	}
	p, _ := r.br.Peek(buffered) // cannot fail: peek of what is buffered
	n := int(binary.BigEndian.Uint32(p))
	if n < headerLen || n > MaxFrame {
		return true, fmt.Errorf("wire: frame length %d outside [%d, %d]", n, headerLen, MaxFrame)
	}
	if 4+n > buffered {
		return false, nil
	}
	err = f.Decode(p[4 : 4+n])
	r.br.Discard(4 + n)
	return true, err
}

// FrameBuffered reports whether a complete frame is already sitting in
// the Reader's buffer, i.e. whether Next is guaranteed to return without
// touching the underlying stream. The server's micro-batcher uses this to
// drain exactly the pipelined burst: it keeps accumulating Admit frames
// while more are already here and flushes the batch right before the
// first read that could block.
func (r *Reader) FrameBuffered() bool {
	if r.br.Buffered() < 4 {
		return false
	}
	hdr, err := r.br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return true // malformed: Next will fail without blocking
	}
	return r.br.Buffered() >= 4+int(n)
}
