package wire

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
)

// admitStream encodes n back-to-back Admit frames with reqID/flow starting
// at base and rate = base + i + 0.25.
func admitStream(n int, base uint64) []byte {
	var s []byte
	for i := 0; i < n; i++ {
		id := base + uint64(i)
		s = AppendAdmit(s, id, id, float64(id)+0.25)
	}
	return s
}

// prime fills the Reader's buffer from the underlying stream without
// consuming anything, standing in for the server's first blocking read
// (whose buffer fill is what hands the burst decoder its run).
func prime(r *Reader) { r.br.Peek(1) }

func TestNextAdmitBurstWalksPipelinedRun(t *testing.T) {
	stream := admitStream(5, 100)
	stream = append(stream, AppendPing(nil, 9)...)
	stream = append(stream, admitStream(2, 200)...)
	r := NewReader(bytes.NewReader(stream))
	prime(r)
	var b AdmitBurst
	if n := r.NextAdmitBurst(&b, 512); n != 5 {
		t.Fatalf("burst decoded %d admits, want 5", n)
	}
	for i := 0; i < 5; i++ {
		id := uint64(100 + i)
		if b.ReqIDs[i] != id || b.Flows[i] != id || b.Rates[i] != float64(id)+0.25 {
			t.Fatalf("admit %d = (%d, %d, %v), want (%d, %d, %v)",
				i, b.ReqIDs[i], b.Flows[i], b.Rates[i], id, id, float64(id)+0.25)
		}
	}
	// The ping at the front of the stream stops the burst without being
	// consumed; the generic path picks it up.
	if n := r.NextAdmitBurst(&b, 512); n != 0 {
		t.Fatalf("burst decoded %d frames past a non-Admit op, want 0", n)
	}
	var f Frame
	if err := r.Next(&f); err != nil || f.Op != OpPing || f.ReqID != 9 {
		t.Fatalf("generic decode after burst = %v op %v, want ping 9", err, f.Op)
	}
	// The trailing run appends to the same burst.
	if n := r.NextAdmitBurst(&b, 512); n != 2 || b.Len() != 7 {
		t.Fatalf("second burst = %d (total %d), want 2 (total 7)", n, b.Len())
	}
	if err := r.Next(&f); err != io.EOF {
		t.Fatalf("stream end = %v, want io.EOF", err)
	}
}

func TestNextAdmitBurstRespectsMax(t *testing.T) {
	r := NewReader(bytes.NewReader(admitStream(8, 0)))
	prime(r)
	var b AdmitBurst
	for _, want := range []int{3, 3, 2, 0} {
		if n := r.NextAdmitBurst(&b, 3); n != want {
			t.Fatalf("capped burst decoded %d, want %d", n, want)
		}
	}
	if b.Len() != 8 {
		t.Fatalf("accumulated %d admits, want 8", b.Len())
	}
	if n := r.NextAdmitBurst(&b, 0); n != 0 {
		t.Fatalf("max <= 0 decoded %d admits, want 0", n)
	}
}

func TestNextAdmitBurstStopsAtTruncation(t *testing.T) {
	full := admitStream(3, 7)
	for cut := 0; cut < admitFrameLen; cut++ {
		stream := full[:len(full)-admitFrameLen+cut] // 2 admits + cut bytes of the 3rd
		r := NewReader(bytes.NewReader(stream))
		prime(r)
		var b AdmitBurst
		if n := r.NextAdmitBurst(&b, 512); n != 2 {
			t.Fatalf("cut %d: burst decoded %d admits, want 2", cut, n)
		}
		var f Frame
		err := r.Next(&f)
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF // clean frame boundary
		}
		if err != want {
			t.Fatalf("cut %d: generic tail error = %v, want %v", cut, err, want)
		}
	}
}

func TestNextAdmitBurstStopsAtMalformed(t *testing.T) {
	bad := AppendAdmit(nil, 5, 5, 1)
	bad[4] = Version + 1 // version mismatch: burst must leave it for Next
	stream := append(admitStream(2, 1), bad...)
	r := NewReader(bytes.NewReader(stream))
	prime(r)
	var b AdmitBurst
	if n := r.NextAdmitBurst(&b, 512); n != 2 {
		t.Fatalf("burst decoded %d admits before the malformed frame, want 2", n)
	}
	var f Frame
	if err := r.Next(&f); err == nil {
		t.Fatal("generic decode accepted the malformed frame the burst skipped")
	}
}

func TestNextAdmitBurstEmptyReader(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	var b AdmitBurst
	if n := r.NextAdmitBurst(&b, 512); n != 0 || b.Len() != 0 {
		t.Fatalf("empty reader produced %d admits", n)
	}
}

// TestNextDepartBurstStopsAtTouch pins the sharpest edge of the Depart
// decoder: Touch frames share the Depart payload length, so only the op
// byte separates them — the burst must stop there, not mis-decode.
func TestNextDepartBurstStopsAtTouch(t *testing.T) {
	stream := AppendDepart(nil, 1, 11)
	stream = AppendDepart(stream, 2, 12)
	stream = AppendTouch(stream, 3, 13)
	stream = AppendDepart(stream, 4, 14)
	r := NewReader(bytes.NewReader(stream))
	prime(r)
	var b DepartBurst
	if n := r.NextDepartBurst(&b, 512); n != 2 {
		t.Fatalf("burst decoded %d departs, want 2 (stop at Touch)", n)
	}
	if b.ReqIDs[0] != 1 || b.Flows[0] != 11 || b.ReqIDs[1] != 2 || b.Flows[1] != 12 {
		t.Fatalf("departs = %v/%v, want reqIDs 1,2 flows 11,12", b.ReqIDs, b.Flows)
	}
	var f Frame
	if err := r.Next(&f); err != nil || f.Op != OpTouch || f.Flow != 13 {
		t.Fatalf("generic decode after burst = %v op %v, want touch 13", err, f.Op)
	}
	if n := r.NextDepartBurst(&b, 512); n != 1 || b.Len() != 3 {
		t.Fatalf("trailing burst = %d (total %d), want 1 (total 3)", n, b.Len())
	}
}

// TestNextDecisionBurstWalksRun covers the response-side decoder a
// pipelined client drains decisions with.
func TestNextDecisionBurstWalksRun(t *testing.T) {
	want := []Decision{
		{Reason: 0, Admissible: 12.5, Active: 3},
		{Reason: 2, Admissible: 12.5, Active: 3},
	}
	stream := AppendDecision(nil, 1, want[0])
	stream = AppendDecision(stream, 2, want[1])
	stream = AppendPong(stream, 3)
	r := NewReader(bytes.NewReader(stream))
	prime(r)
	var b DecisionBurst
	if n := r.NextDecisionBurst(&b, 512); n != 2 {
		t.Fatalf("burst decoded %d decisions, want 2", n)
	}
	for i := range want {
		if b.ReqIDs[i] != uint64(i+1) || b.Decisions[i] != want[i] {
			t.Fatalf("decision %d = (%d, %+v), want (%d, %+v)", i, b.ReqIDs[i], b.Decisions[i], i+1, want[i])
		}
	}
	var f Frame
	if err := r.Next(&f); err != nil || f.Op != OpPong {
		t.Fatalf("generic decode after burst = %v op %v, want pong", err, f.Op)
	}
}

// TestNextAckBurstStopsAtBadStatus: the generic decoder rejects an Ack
// with an out-of-range status byte, so the burst decoder must leave it
// unconsumed for Next to surface the same error.
func TestNextAckBurstStopsAtBadStatus(t *testing.T) {
	stream := AppendAck(nil, 1, StatusOK)
	bad := AppendAck(nil, 2, StatusOK)
	bad[14] = byte(StatusInvalidRate) + 1
	stream = append(stream, bad...)
	r := NewReader(bytes.NewReader(stream))
	prime(r)
	var b AckBurst
	if n := r.NextAckBurst(&b, 512); n != 1 {
		t.Fatalf("burst decoded %d acks, want 1 (stop at bad status)", n)
	}
	if b.ReqIDs[0] != 1 || b.Statuses[0] != StatusOK {
		t.Fatalf("ack = (%d, %v), want (1, ok)", b.ReqIDs[0], b.Statuses[0])
	}
	var f Frame
	if err := r.Next(&f); err == nil {
		t.Fatal("generic decode accepted the bad-status ack the burst skipped")
	}
}

// decodeGeneric consumes stream with the frame-at-a-time decoder only,
// returning each decoded frame re-encoded canonically, plus the
// terminating error.
func decodeGeneric(tb testing.TB, stream []byte) ([][]byte, error) {
	r := NewReader(bytes.NewReader(stream))
	var out [][]byte
	var f Frame
	for {
		if err := r.Next(&f); err != nil {
			return out, err
		}
		out = append(out, encodeCanonical(tb, &f, nil))
	}
}

// decodeBurstFirst consumes stream the way the serving hot paths do:
// prefer the vectorized burst decoders — every one of them, the way the
// server walks Admit/Depart runs and a client walks Decision/Ack runs —
// and fall back to Next only for whatever frame stopped them all. Each
// decoder consumes a run from the front of the stream and its frames are
// re-encoded immediately, so output order is stream order regardless of
// which decoder fires. The odd burst cap exercises resumed bursts.
func decodeBurstFirst(tb testing.TB, stream []byte) ([][]byte, error) {
	r := NewReader(bytes.NewReader(stream))
	var out [][]byte
	var (
		ad AdmitBurst
		dp DepartBurst
		dc DecisionBurst
		ak AckBurst
	)
	var f Frame
	for {
		prime(r)
		for {
			progress := false
			ad.Reset()
			if r.NextAdmitBurst(&ad, 7) > 0 {
				progress = true
				for i := range ad.ReqIDs {
					out = append(out, AppendAdmit(nil, ad.ReqIDs[i], ad.Flows[i], ad.Rates[i]))
				}
			}
			dp.Reset()
			if r.NextDepartBurst(&dp, 7) > 0 {
				progress = true
				for i := range dp.ReqIDs {
					out = append(out, AppendDepart(nil, dp.ReqIDs[i], dp.Flows[i]))
				}
			}
			dc.Reset()
			if r.NextDecisionBurst(&dc, 7) > 0 {
				progress = true
				for i := range dc.ReqIDs {
					out = append(out, AppendDecision(nil, dc.ReqIDs[i], dc.Decisions[i]))
				}
			}
			ak.Reset()
			if r.NextAckBurst(&ak, 7) > 0 {
				progress = true
				for i := range ak.ReqIDs {
					out = append(out, AppendAck(nil, ak.ReqIDs[i], ak.Statuses[i]))
				}
			}
			if !progress {
				break
			}
		}
		if err := r.Next(&f); err != nil {
			return out, err
		}
		out = append(out, encodeCanonical(tb, &f, nil))
	}
}

// requireSameDecode asserts the burst-first and generic decoders produce
// identical frame sequences and identical terminal errors over stream —
// the conformance property that lets the server run the fast path without
// a behavioral switch.
func requireSameDecode(tb testing.TB, stream []byte) {
	tb.Helper()
	gf, ge := decodeGeneric(tb, stream)
	bf, be := decodeBurstFirst(tb, stream)
	if fmt.Sprint(ge) != fmt.Sprint(be) {
		tb.Fatalf("terminal errors diverge: generic %v, burst %v", ge, be)
	}
	if len(gf) != len(bf) {
		tb.Fatalf("frame counts diverge: generic %d, burst %d", len(gf), len(bf))
	}
	for i := range gf {
		if !bytes.Equal(gf[i], bf[i]) {
			tb.Fatalf("frame %d diverges:\n  generic %x\n  burst   %x", i, gf[i], bf[i])
		}
	}
}

func TestBurstGenericDifferential(t *testing.T) {
	var every []byte
	for _, fr := range sampleFrames() {
		every = append(every, fr...)
	}
	nan := AppendAdmit(nil, 3, 3, math.NaN())
	departs := func(n int, base uint64) []byte {
		var s []byte
		for i := 0; i < n; i++ {
			s = AppendDepart(s, base+uint64(i), base+uint64(i))
		}
		return s
	}
	badAck := AppendAck(nil, 8, StatusOK)
	badAck[14] = byte(StatusInvalidRate) + 1
	responses := AppendDecision(nil, 1, Decision{Reason: 1, Admissible: 5, Active: 2})
	responses = AppendDecision(responses, 2, Decision{Admissible: 5, Active: 3})
	responses = AppendAck(responses, 3, StatusNotActive)
	responses = AppendAck(responses, 4, StatusOK)
	streams := map[string][]byte{
		"every op":            every,
		"long admit run":      admitStream(200, 0),
		"admits around ops":   append(append(admitStream(3, 0), every...), admitStream(3, 50)...),
		"admit depart churn":  append(append(admitStream(4, 0), departs(4, 0)...), admitStream(2, 9)...),
		"touch among departs": append(append(departs(2, 0), AppendTouch(nil, 7, 0)...), departs(2, 5)...),
		"response runs":       responses,
		"bad ack status":      append(AppendAck(nil, 1, StatusOK), badAck...),
		"nan rate":            append(admitStream(1, 0), nan...),
		"garbage":             {0, 0, 0, 30, 99, 99, 99},
		"oversized length":    {0xff, 0xff, 0xff, 0xff, 0, 0},
		"empty":               nil,
		"lone partial prefix": {0, 0},
	}
	for name, s := range streams {
		t.Run(name, func(t *testing.T) { requireSameDecode(t, s) })
	}
	// Every truncation point of a mixed stream: the burst decoder must
	// stop exactly where the generic decoder would, whatever the cut.
	mixed := append(admitStream(2, 9), AppendDepart(nil, 4, 9)...)
	mixed = append(mixed, admitStream(2, 20)...)
	for cut := 0; cut <= len(mixed); cut++ {
		requireSameDecode(t, mixed[:cut])
	}
}

// TestNextAdmitBurstAllocationFree pins the hot-path contract: walking
// bursts out of a warmed Reader and AdmitBurst allocates nothing.
func TestNextAdmitBurstAllocationFree(t *testing.T) {
	stream := admitStream(64, 0)
	br := bytes.NewReader(stream)
	r := NewReader(br)
	var b AdmitBurst
	prime(r)
	r.NextAdmitBurst(&b, 64) // warm the burst slices
	allocs := testing.AllocsPerRun(1000, func() {
		br.Reset(stream)
		r.br.Reset(br)
		prime(r)
		b.Reset()
		if n := r.NextAdmitBurst(&b, 64); n != 64 {
			t.Fatalf("burst decoded %d admits, want 64", n)
		}
	})
	if allocs != 0 {
		t.Fatalf("burst decode allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzAdmitBurst holds the vectorized decoder to the generic decoder over
// arbitrary byte streams: same frames out, same terminal error, never a
// panic. With FuzzFrameDecode pinning the generic decoder to "canonical
// or rejected", this transitively pins the fast path too.
func FuzzAdmitBurst(f *testing.F) {
	var every []byte
	for _, fr := range sampleFrames() {
		every = append(every, fr...)
	}
	f.Add(every)
	f.Add(admitStream(20, 0))
	f.Add(append(admitStream(2, 0), AppendTouch(nil, 7, 1)...))
	f.Add(admitStream(3, 0)[:70]) // truncated mid-frame
	f.Add(append(AppendDepart(nil, 1, 1), AppendDepart(nil, 2, 2)...))
	f.Add(append(AppendDecision(nil, 1, Decision{Reason: 1}), AppendAck(nil, 2, StatusOK)...))
	f.Fuzz(func(t *testing.T, stream []byte) {
		requireSameDecode(t, stream)
	})
}
