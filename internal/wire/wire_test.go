package wire

import (
	"bytes"
	"io"
	"math"
	"net"
	"testing"
)

// encodeCanonical re-encodes a decoded frame through the Append helpers,
// returning the full frame bytes (length prefix included). Shared with the
// fuzz target.
func encodeCanonical(tb testing.TB, f *Frame, dst []byte) []byte {
	tb.Helper()
	var err error
	switch f.Op {
	case OpAdmit:
		dst = AppendAdmit(dst, f.ReqID, f.Flow, f.Rate)
	case OpAdmitBatch:
		dst, err = AppendAdmitBatch(dst, f.ReqID, f.Flows, f.Rates)
	case OpUpdateRate:
		dst = AppendUpdateRate(dst, f.ReqID, f.Flow, f.Rate)
	case OpTouch:
		dst = AppendTouch(dst, f.ReqID, f.Flow)
	case OpDepart:
		dst = AppendDepart(dst, f.ReqID, f.Flow)
	case OpPing:
		dst = AppendPing(dst, f.ReqID)
	case OpDecision:
		dst = AppendDecision(dst, f.ReqID, f.Decision)
	case OpDecisionBatch:
		dst, err = AppendDecisionBatch(dst, f.ReqID, f.Decisions)
	case OpAck:
		dst = AppendAck(dst, f.ReqID, f.Status)
	case OpPong:
		dst = AppendPong(dst, f.ReqID)
	case OpRefusal:
		dst = AppendRefusal(dst, f.ReqID, f.Refusal)
	default:
		tb.Fatalf("encodeCanonical: unhandled op %v", f.Op)
	}
	if err != nil {
		tb.Fatalf("encodeCanonical: %v", err)
	}
	return dst
}

// sampleFrames returns one encoded frame per op, length prefix included.
func sampleFrames() [][]byte {
	var frames [][]byte
	frames = append(frames, AppendAdmit(nil, 1, 42, 1.5))
	b, _ := AppendAdmitBatch(nil, 2, []uint64{1, 2, 3}, []float64{0.5, 1, 2})
	frames = append(frames, b)
	frames = append(frames, AppendUpdateRate(nil, 3, 42, 0))
	frames = append(frames, AppendTouch(nil, 4, 42))
	frames = append(frames, AppendDepart(nil, 5, 42))
	frames = append(frames, AppendPing(nil, 6))
	frames = append(frames, AppendDecision(nil, 7, Decision{Reason: 1, Admissible: 99.5, Active: -3}))
	b, _ = AppendDecisionBatch(nil, 8, []Decision{{Reason: 0, Admissible: 10, Active: 4}, {Reason: 3}})
	frames = append(frames, b)
	frames = append(frames, AppendAck(nil, 9, StatusNotActive))
	frames = append(frames, AppendPong(nil, 10))
	frames = append(frames, AppendRefusal(nil, 0, RefuseOverloaded))
	return frames
}

func TestRoundTripEveryOp(t *testing.T) {
	var f Frame
	for _, enc := range sampleFrames() {
		if err := f.Decode(enc[4:]); err != nil {
			t.Fatalf("decode %v: %v", enc, err)
		}
		re := encodeCanonical(t, &f, nil)
		if !bytes.Equal(enc, re) {
			t.Errorf("%v: round trip changed bytes:\n  in  %x\n  out %x", f.Op, enc, re)
		}
	}
}

func TestDecisionFieldFidelity(t *testing.T) {
	want := Decision{Reason: 4, Admissible: math.Inf(1), Active: 1 << 40}
	enc := AppendDecision(nil, 77, want)
	var f Frame
	if err := f.Decode(enc[4:]); err != nil {
		t.Fatal(err)
	}
	if f.ReqID != 77 || f.Decision != want {
		t.Fatalf("got reqID %d decision %+v, want 77 %+v", f.ReqID, f.Decision, want)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	admit := AppendAdmit(nil, 1, 2, 3)[4:]
	cases := map[string][]byte{
		"short header":      {Version, byte(OpPing)},
		"bad version":       append([]byte{Version + 1}, admit[1:]...),
		"zero op":           {Version, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"unknown op":        {Version, 200, 0, 0, 0, 0, 0, 0, 0, 0},
		"trailing bytes":    append(append([]byte{}, admit...), 0),
		"truncated payload": admit[:len(admit)-1],
		"ping with payload": append(AppendPing(nil, 1)[4:], 9),
		"bad status":        AppendAck(nil, 1, Status(9))[4:],
		"zero refusal":      AppendRefusal(nil, 1, Refusal(0))[4:],
		"bad refusal":       AppendRefusal(nil, 1, Refusal(99))[4:],
	}
	// A zero batch count and an inconsistent batch count.
	b, _ := AppendAdmitBatch(nil, 1, []uint64{5}, []float64{1})
	zeroCount := append([]byte{}, b[4:]...)
	zeroCount[headerLen] = 0
	zeroCount[headerLen+1] = 0
	cases["zero batch count"] = zeroCount
	overCount := append([]byte{}, b[4:]...)
	overCount[headerLen] = 0xff
	overCount[headerLen+1] = 0xff
	cases["overlong batch count"] = overCount
	var f Frame
	for name, p := range cases {
		if err := f.Decode(p); err == nil {
			t.Errorf("%s: decode accepted %x", name, p)
		}
	}
}

func TestAppendBatchValidation(t *testing.T) {
	if _, err := AppendAdmitBatch(nil, 1, []uint64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AppendAdmitBatch(nil, 1, nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AppendDecisionBatch(nil, 1, make([]Decision, MaxBatch+1)); err == nil {
		t.Error("oversized decision batch accepted")
	}
}

func TestReaderStream(t *testing.T) {
	frames := sampleFrames()
	var stream []byte
	for _, fr := range frames {
		stream = append(stream, fr...)
	}
	r := NewReader(bytes.NewReader(stream))
	var f Frame
	for i, fr := range frames {
		if err := r.Next(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		re := encodeCanonical(t, &f, nil)
		if !bytes.Equal(fr, re) {
			t.Fatalf("frame %d changed across the Reader", i)
		}
	}
	if err := r.Next(&f); err != io.EOF {
		t.Fatalf("got %v at end of stream, want io.EOF", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0}))
	var f Frame
	if err := r.Next(&f); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestReaderPartialFrame(t *testing.T) {
	enc := AppendAdmit(nil, 1, 2, 3)
	r := NewReader(bytes.NewReader(enc[:len(enc)-2]))
	var f Frame
	if err := r.Next(&f); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v for a truncated frame, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameBuffered(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	r := NewReader(c2)
	if r.FrameBuffered() {
		t.Fatal("empty reader claims a buffered frame")
	}
	two := AppendPing(AppendPing(nil, 1), 2)
	errc := make(chan error, 1)
	go func() {
		_, err := c1.Write(two)
		errc <- err
	}()
	var f Frame
	if err := r.Next(&f); err != nil { // pulls both frames into the buffer
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !r.FrameBuffered() {
		t.Fatal("second pipelined frame not reported as buffered")
	}
	if err := r.Next(&f); err != nil {
		t.Fatal(err)
	}
	if r.FrameBuffered() {
		t.Fatal("drained reader still claims a buffered frame")
	}
}

// TestEncodeDecodeAllocationFree pins the zero-alloc contract of the
// steady state: encoding into a warmed scratch buffer and decoding into a
// warmed Frame must not allocate.
func TestEncodeDecodeAllocationFree(t *testing.T) {
	flows := []uint64{1, 2, 3, 4}
	rates := []float64{1, 2, 3, 4}
	scratch := make([]byte, 0, 1024)
	var f Frame
	warm, err := AppendAdmitBatch(scratch, 1, flows, rates)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Decode(warm[4:]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		buf := scratch[:0]
		buf = AppendAdmit(buf, 9, 42, 1.25)
		buf, err = AppendAdmitBatch(buf, 10, flows, rates)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Decode(buf[4+len(buf)-len(warm):]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode/decode allocates %.1f times per op, want 0", allocs)
	}
}

func TestEnumStringParseRoundTrips(t *testing.T) {
	for o := OpAdmit; o <= OpRefusal; o++ {
		got, err := ParseOp(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOp(%q) = %v, %v", o.String(), got, err)
		}
	}
	for s := StatusOK; s <= StatusInvalidRate; s++ {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	for r := RefuseOverloaded; r <= RefuseProtocol; r++ {
		got, err := ParseRefusal(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRefusal(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseOp("nope"); err == nil {
		t.Error("ParseOp accepted garbage")
	}
}
