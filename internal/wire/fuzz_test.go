package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode fuzzes the frame decoder with raw payloads (the bytes
// after the length prefix, which is what an attacker controls once the
// Reader has bounded the length). Properties:
//
//  1. Decode never panics, whatever the input;
//  2. any payload that decodes is canonical: re-encoding the decoded
//     Frame reproduces the input byte-for-byte (the protocol has exactly
//     one encoding per message, so a hostile peer cannot smuggle state
//     through redundant encodings);
//  3. the re-encoded frame decodes again (encode and decode agree).
//
// The seed corpus under testdata/fuzz/FuzzFrameDecode covers every op
// plus a malformed frame; `go test` replays it even without -fuzz.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(fr[4:])
	}
	f.Add([]byte{Version, byte(OpAdmitBatch), 0, 0, 0, 0, 0, 0, 0, 1, 0, 3})
	f.Fuzz(func(t *testing.T, p []byte) {
		var fr Frame
		if err := fr.Decode(p); err != nil {
			return
		}
		enc := encodeCanonical(t, &fr, nil)
		if !bytes.Equal(enc[4:], p) {
			t.Fatalf("decode accepted a non-canonical payload:\n  in  %x\n  out %x", p, enc[4:])
		}
		var again Frame
		if err := again.Decode(enc[4:]); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}
