package mbac

// The benchmark harness regenerates every evaluation artifact of the paper
// (DESIGN.md section 3): one benchmark per figure/proposition, each running
// the corresponding experiment at Quick fidelity and reporting the headline
// quantity as a custom metric. `go test -bench=. -benchmem` therefore
// reproduces the entire evaluation at reduced statistical effort; use
// `go run ./cmd/figures -all -fidelity full` for publication-grade runs.
//
// Custom metrics: pf_* are overflow probabilities (the paper's y-axes);
// ratio_* compare simulation to theory where the paper does.

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/theory"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and returns the tables of the last run.
func runExperiment(b *testing.B, id string) []*experiments.Table {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = r.Run(experiments.Quick, uint64(i)+1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tables
}

// cell fetches a named column from a table row.
func cell(b *testing.B, t *experiments.Table, row int, col string) float64 {
	b.Helper()
	for j, c := range t.Columns {
		if c == col {
			return t.Rows[row][j]
		}
	}
	b.Fatalf("column %q not in %v", col, t.Columns)
	return 0
}

func BenchmarkProp31Impulsive(b *testing.B) {
	tables := runExperiment(b, "prop31")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, "sim_mean_M0"), "M0_mean")
	b.ReportMetric(cell(b, t, last, "sim_sd_M0")/cell(b, t, last, "th_sd_M0"), "sd_ratio_vs_theory")
}

func BenchmarkProp33SqrtTwoLaw(b *testing.B) {
	tables := runExperiment(b, "prop33")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_sim"), "pf_sim")
	b.ReportMetric(cell(b, t, 0, "pf_sim")/cell(b, t, 0, "pf_theory"), "ratio_vs_sqrt2_law")
}

func BenchmarkFiniteHolding(b *testing.B) {
	tables := runExperiment(b, "finite")
	t := tables[0]
	// Report the peak of the measured profile.
	peak := 0.0
	for i := range t.Rows {
		if v := cell(b, t, i, "pf_sim"); v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, "pf_peak")
}

func BenchmarkFig5(b *testing.B) {
	tables := runExperiment(b, "fig5")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_sim"), "pf_memoryless")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pf_sim"), "pf_max_memory")
}

func BenchmarkFig6Inversion(b *testing.B) {
	tables := runExperiment(b, "fig6")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pce_n100_Th1e3"), "pce_smallest_Tm")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pce_n100_Th1e3"), "pce_largest_Tm")
}

func BenchmarkFig7(b *testing.B) {
	tables := runExperiment(b, "fig7")
	t := tables[0]
	worst := 0.0
	for i := range t.Rows {
		if v := cell(b, t, i, "pf_over_pq"); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst_pf_over_pq")
}

func BenchmarkFig9Surface(b *testing.B) {
	tables := runExperiment(b, "fig9")
	t := tables[0]
	b.ReportMetric(t.Rows[0][1], "pf_no_memory_small_Tc")
	b.ReportMetric(t.Rows[len(t.Rows)-1][1], "pf_full_memory_small_Tc")
}

func BenchmarkFig10(b *testing.B) {
	tables := runExperiment(b, "fig10")
	t := tables[0]
	b.ReportMetric(t.Rows[0][1], "pf_no_memory_small_Tc")
	b.ReportMetric(t.Rows[len(t.Rows)-1][1], "pf_full_memory_small_Tc")
}

func BenchmarkFig11(b *testing.B) {
	tables := runExperiment(b, "fig11")
	t := tables[0]
	worst := 0.0
	for i := range t.Rows {
		if v := cell(b, t, i, "pf_over_pce"); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst_pf_over_target")
}

func BenchmarkFig12(b *testing.B) {
	tables := runExperiment(b, "fig12")
	t := tables[0]
	worst := 0.0
	for i := range t.Rows {
		if v := cell(b, t, i, "pf_over_pce"); v > worst {
			worst = v
		}
	}
	b.ReportMetric(worst, "worst_pf_over_target")
}

func BenchmarkUtilization(b *testing.B) {
	tables := runExperiment(b, "util")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, "delta_sim"), "flows_lost_sim")
	b.ReportMetric(cell(b, t, last, "delta_eq40"), "flows_lost_eq40")
}

func BenchmarkLimitProcess(b *testing.B) {
	tables := runExperiment(b, "limit")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_limit_sim"), "pf_limit_memoryless")
	b.ReportMetric(cell(b, t, 0, "pf_limit_sim")/cell(b, t, 0, "pf_eq37"), "ratio_vs_eq37")
}

func BenchmarkRegimes(b *testing.B) {
	tables := runExperiment(b, "regimes")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_eq37"), "pf_masking_end")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pf_eq37"), "pf_repair_end")
}

func BenchmarkAblationSampling(b *testing.B) {
	tables := runExperiment(b, "abl-sampling")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "tw_halfwidth"), "ci_time_weighted")
	b.ReportMetric(cell(b, t, 0, "ps_halfwidth"), "ci_point_sampled")
}

func BenchmarkAblationFilter(b *testing.B) {
	tables := runExperiment(b, "abl-filter")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_exponential"), "pf_exponential")
	b.ReportMetric(cell(b, t, 0, "pf_window"), "pf_window")
}

func BenchmarkAblationVariance(b *testing.B) {
	tables := runExperiment(b, "abl-variance")
	t := tables[0]
	b.ReportMetric(cell(b, t, 2, "pf_sim"), "pf_hetero_perflow")
	b.ReportMetric(cell(b, t, 3, "pf_sim"), "pf_hetero_aggonly")
}

func BenchmarkAblationTheory(b *testing.B) {
	tables := runExperiment(b, "abl-theory")
	t := tables[0]
	// Row 0 is the smallest Tc, i.e. the LARGEST gamma (gamma = ThTilde
	// svr / Tc); the closed form is exact there and explodes conservatively
	// as gamma shrinks.
	b.ReportMetric(cell(b, t, 0, "ratio"), "eq38_over_eq37_large_gamma")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "ratio"), "eq38_over_eq37_small_gamma")
}

// Extension experiments (DESIGN.md section 5 / paper Sections 2, 6, 7).

func BenchmarkExtensionArrivalRate(b *testing.B) {
	tables := runExperiment(b, "arrival")
	t := tables[0]
	last := len(t.Rows) - 1 // lambda = 0: the continuous-load bound
	b.ReportMetric(cell(b, t, last, "pf_sim"), "pf_infinite_load")
	b.ReportMetric(cell(b, t, 0, "pf_sim"), "pf_light_load")
}

func BenchmarkExtensionBayes(b *testing.B) {
	tables := runExperiment(b, "bayes")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_sim"), "pf_memoryless")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pf_sim"), "pf_memory")
}

func BenchmarkExtensionUtility(b *testing.B) {
	tables := runExperiment(b, "utility")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "u_concave"), "u_adaptive_naive")
	b.ReportMetric(cell(b, t, 1, "u_concave"), "u_adaptive_robust")
}

func BenchmarkExtensionReneg(b *testing.B) {
	tables := runExperiment(b, "reneg")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "reneg_failure_prob"), "reneg_fail_prob")
	b.ReportMetric(cell(b, t, 0, "pf_time_fraction"), "pf_time_fraction")
}

func BenchmarkExtensionMisdeclaration(b *testing.B) {
	tables := runExperiment(b, "misdecl")
	t := tables[0]
	// Rows 2/3 are the under-declared case: declaration AC vs MBAC.
	b.ReportMetric(cell(b, t, 2, "pf_sim"), "pf_declaration_ac")
	b.ReportMetric(cell(b, t, 3, "pf_sim"), "pf_mbac")
}

func BenchmarkExtensionHolding(b *testing.B) {
	tables := runExperiment(b, "holding")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_sim"), "pf_deterministic")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pf_sim"), "pf_hyperexponential")
}

func BenchmarkExtensionTransient(b *testing.B) {
	tables := runExperiment(b, "transient")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "pf_ensemble"), "pf_early")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, "pf_ensemble"), "pf_late")
}

func BenchmarkFig2Trajectory(b *testing.B) {
	tables := runExperiment(b, "fig2")
	t := tables[0]
	b.ReportMetric(float64(len(t.Rows)), "series_points")
}

func BenchmarkExtensionBuffer(b *testing.B) {
	tables := runExperiment(b, "buffer")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, "loss_fraction"), "loss_small_buffer")
	b.ReportMetric(cell(b, t, 0, "pf_bufferless"), "pf_bufferless")
}

// Micro-benchmarks of the hot analytical paths used inside the admission
// loop, complementing the per-package micro benches.

func BenchmarkPlanRobust(b *testing.B) {
	sys := theory.System{Capacity: 100, Mu: 1, Sigma: 0.3, Th: 1000, Tc: 1}
	for i := 0; i < b.N; i++ {
		if _, err := theory.PlanRobust(sys, 1e-3, theory.InvertIntegral); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayAdmit measures the online gateway's concurrent
// admission hot path: every iteration admits and departs one flow under
// b.RunParallel, with a large bound so the CAS loop, shard locking and
// counter updates — not capacity refusals — dominate. It runs the gateway
// as a load driver deploys it: counters at exact fidelity, latency sampled
// 1-in-8 (see Config.LatencySample), so the measurement does not perturb
// the measured path. Leases are enabled (FlowTTL), so every admission also
// pays the deadline stamp and per-shard min-deadline upkeep — the
// lifecycle machinery is inside the measured budget, not bolted on.
// This is the baseline for future gateway perf PRs
// (recorded in CHANGES.md and BENCH_gateway.json).
func BenchmarkGatewayAdmit(b *testing.B) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:      1e9,
		Controller:    ctrl,
		Estimator:     NewExponentialEstimator(100),
		Shards:        64,
		LatencySample: 8,
		FlowTTL:       30,
	})
	if err != nil {
		b.Fatal(err)
	}
	var nextID atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			if _, err := g.Admit(id, 1.0); err != nil {
				b.Error(err)
				return
			}
			if err := g.Depart(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
	st := g.Stats()
	if st.Active != 0 || st.Admitted != int64(nextID.Load()) {
		b.Fatalf("counters drifted: %+v", st)
	}
}

// BenchmarkGatewayAdmitAdaptive is BenchmarkGatewayAdmit with the online
// time-scale controller wired in (GatewayConfig.Tuner) but quiescent: the
// tuner runs on the measurement-tick path only, so an adaptive gateway's
// admission hot path must price identically to the fixed-memory baseline —
// same ns/op envelope, zero allocations.
func BenchmarkGatewayAdmitAdaptive(b *testing.B) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	tuner, err := NewAdaptiveController(AdaptiveConfig{Capacity: 1e9, Th: 100, PQ: 1e-2})
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:      1e9,
		Controller:    ctrl,
		Estimator:     NewExponentialEstimator(100),
		Shards:        64,
		LatencySample: 8,
		FlowTTL:       30,
		Tuner:         tuner,
	})
	if err != nil {
		b.Fatal(err)
	}
	var nextID atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			if _, err := g.Admit(id, 1.0); err != nil {
				b.Error(err)
				return
			}
			if err := g.Depart(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
	st := g.Stats()
	if st.Active != 0 || st.Admitted != int64(nextID.Load()) {
		b.Fatalf("counters drifted: %+v", st)
	}
}

// BenchmarkGatewayAdmitInstrumented is BenchmarkGatewayAdmit under active
// observation: a background goroutine polls Snapshot and renders the
// Prometheus text the whole time, the situation a scraped production
// gateway lives in. The admission path must stay allocation-free and
// within the same order of magnitude as the unobserved baseline.
func BenchmarkGatewayAdmitInstrumented(b *testing.B) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:   1e9,
		Controller: ctrl,
		Estimator:  NewExponentialEstimator(100),
		Shards:     64,
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := g.Snapshot()
				snap.WritePrometheus(io.Discard)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var nextID atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := nextID.Add(1)
			if _, err := g.Admit(id, 1.0); err != nil {
				b.Error(err)
				return
			}
			if err := g.Depart(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
	close(stop)
	wg.Wait()
	snap := g.Snapshot()
	if snap.Active != 0 || snap.Admitted != int64(nextID.Load()) {
		b.Fatalf("counters drifted: active %d admitted %d", snap.Active, snap.Admitted)
	}
	if snap.AdmitLatency.Count != snap.Admitted+snap.Rejected {
		b.Fatalf("latency histogram saw %d decisions, counters say %d",
			snap.AdmitLatency.Count, snap.Admitted+snap.Rejected)
	}
}

// BenchmarkGatewayAdmitBatch measures the bulk admission path: each
// iteration decides one 64-request batch through AdmitBatch (reused id,
// rate and decision buffers — the steady state of a replay or accept-queue
// drain) and departs the admitted flows. The whole batch pays one clock
// pair and one bound load, so the per-decision cost is the floor the
// serving path approaches under arrival storms.
func BenchmarkGatewayAdmitBatch(b *testing.B) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:      1e9,
		Controller:    ctrl,
		Estimator:     NewExponentialEstimator(100),
		Shards:        64,
		LatencySample: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	const batchLen = 64
	ids := make([]uint64, batchLen)
	rates := make([]float64, batchLen)
	dst := make([]GatewayDecision, 0, batchLen)
	var next uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range ids {
			next++
			ids[j] = next
			rates[j] = 1
		}
		dst, err = g.AdmitBatch(ids, rates, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range ids {
			if err := g.Depart(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batchLen, "flows/op")
	st := g.Stats()
	if st.Active != 0 || st.Admitted != int64(next) {
		b.Fatalf("counters drifted: %+v", st)
	}
}

// BenchmarkGatewayTick measures the measurement path with a populated flow
// table: 1024 active flows across 64 shards, one shard exactly recomputed
// per tick (the drift rotation), the estimator advanced and the bound
// republished.
func BenchmarkGatewayTick(b *testing.B) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:   1e9,
		Controller: ctrl,
		Estimator:  NewExponentialEstimator(100),
		Shards:     64,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if _, err := g.Admit(uint64(i), 0.5+float64(i%7)*0.2); err != nil {
			b.Fatal(err)
		}
	}
	now := 0.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 0.1
		g.Tick(now)
	}
}

// TestGatewayTickAllocBudget fails the suite if the measurement tick
// exceeds its allocation budget (≤ 1 alloc per tick in steady state).
func TestGatewayTickAllocBudget(t *testing.T) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:   1e9,
		Controller: ctrl,
		Estimator:  NewExponentialEstimator(100),
		Shards:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := g.Admit(uint64(i), 0.5+float64(i%7)*0.2); err != nil {
			t.Fatal(err)
		}
	}
	now := 1.0
	for i := 0; i < 32; i++ { // warm the rotation scratch across all shards
		now += 0.1
		g.Tick(now)
	}
	allocs := testing.AllocsPerRun(100, func() {
		now += 0.1
		g.Tick(now)
	})
	if allocs > 1 {
		t.Fatalf("Tick allocates %.1f times per call, budget is 1", allocs)
	}
}

// TestGatewayAdmitAllocationFree fails the suite — not just a benchmark
// run — if the instrumented admission path ever allocates.
func TestGatewayAdmitAllocationFree(t *testing.T) {
	ctrl, err := NewCertaintyEquivalent(1e-2, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Capacity:   1e9,
		Controller: ctrl,
		Estimator:  NewExponentialEstimator(100),
		Shards:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	const id = uint64(7)
	if _, err := g.Admit(id, 1.0); err != nil { // warm the shard map slot
		t.Fatal(err)
	}
	if err := g.Depart(id); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := g.Admit(id, 1.0); err != nil {
			t.Fatal(err)
		}
		if err := g.Depart(id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented Admit/Depart allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkOverflowIntegral(b *testing.B) {
	sys := theory.System{Capacity: 100, Mu: 1, Sigma: 0.3, Th: 1000, Tc: 1, Tm: 100}
	for i := 0; i < b.N; i++ {
		theory.ContinuousOverflowIntegral(sys, 1e-3)
	}
}
