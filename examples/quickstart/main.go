// Quickstart: admit renegotiated-CBR flows onto a bufferless link with a
// measurement-based admission controller, and compare three configurations
// of the same controller:
//
//  1. naive     — memoryless estimates, certainty-equivalent target = QoS
//     target (what a first implementation would do);
//  2. robust    — the paper's recipe: memory window T_m = T~h and the
//     adjusted target from inverting the overflow formula;
//  3. genie     — perfect knowledge of the flow statistics (the baseline
//     the theory says the robust scheme approaches).
//
// The run prints the achieved overflow probability and utilization of each.
package main

import (
	"fmt"
	"log"

	mbac "repro"
)

func main() {
	const (
		capacity = 100.0 // link capacity, in units of the mean flow rate
		svr      = 0.3   // flow burstiness: sigma/mu
		holding  = 300.0 // mean flow lifetime
		corrTime = 1.0   // burst correlation time-scale
		targetP  = 1e-2  // QoS: overflow probability the users should see
		simTime  = 5e4
	)

	model := mbac.RCBR(1, svr, corrTime)
	sys := mbac.System{Capacity: capacity, Mu: 1, Sigma: svr, Th: holding, Tc: corrTime}

	// The paper's engineering output: memory window + adjusted target.
	plan, err := mbac.Plan(sys, targetP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("robust plan: Tm = %.3g (critical time-scale), pce = %.3g (vs naive %.3g), "+
		"predicted utilization cost %.2g%%\n\n",
		plan.MemoryTm, plan.AdjustedPce, targetP, 100*plan.UtilizationCost/capacity)

	run := func(name string, ctrl mbac.Controller, est mbac.Estimator, tm float64) {
		res, err := mbac.Simulate(mbac.SimConfig{
			Capacity:    capacity,
			Model:       model,
			Controller:  ctrl,
			Estimator:   est,
			HoldingTime: holding,
			Seed:        42,
			Warmup:      20 * plan.MemoryTm,
			MaxTime:     simTime,
			Tc:          corrTime,
			Tm:          tm,
			TargetP:     targetP,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "MEETS target"
		if res.Pf > targetP {
			verdict = fmt.Sprintf("MISSES target by %.1fx", res.Pf/targetP)
		}
		fmt.Printf("%-8s pf = %-10.3g utilization = %.3f  mean flows = %-6.1f %s\n",
			name, res.Pf, res.Utilization, res.MeanFlows, verdict)
	}

	naive, err := mbac.NewCertaintyEquivalent(targetP, 1, svr)
	if err != nil {
		log.Fatal(err)
	}
	run("naive", naive, mbac.NewMemorylessEstimator(), 0)

	robust, err := mbac.NewCertaintyEquivalent(plan.AdjustedPce, 1, svr)
	if err != nil {
		log.Fatal(err)
	}
	run("robust", robust, mbac.NewExponentialEstimator(plan.MemoryTm), plan.MemoryTm)

	genie, err := mbac.NewPerfectKnowledge(capacity, 1, svr, targetP)
	if err != nil {
		log.Fatal(err)
	}
	run("genie", genie, mbac.NewMemorylessEstimator(), 0)
}
