// Videogateway: a video-on-demand gateway multiplexes long-range-dependent
// VBR video flows (a synthetic stand-in for the MPEG-1 "Star Wars" trace —
// Hurst ~ 0.8 with scene-change level shifts, delivered as piecewise CBR)
// onto a fixed uplink using measurement-based admission control.
//
// This is the scenario of the paper's Figures 11-12: no parametric traffic
// model fits this source, and its correlation structure extends across all
// time-scales, so a-priori traffic specification is hopeless — exactly
// where MBAC earns its keep. The example shows that the memoryless
// estimator is destroyed by the long-range dependence while the single
// prescription "memory window = critical time-scale T~h" stays robust
// across a 100x range of session lifetimes, with no knowledge of the
// traffic's correlation structure at all.
package main

import (
	"fmt"
	"log"
	"math"

	mbac "repro"
)

func main() {
	const (
		capacity = 100.0
		targetP  = 1e-2
		simTime  = 4e4
	)

	// Synthesize the movie library's rate trace once; every admitted
	// session plays it from a random offset.
	cfg := mbac.DefaultVideoConfig()
	tr, err := mbac.SyntheticVideo(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("video trace: mean %.3g, cv %.2f, Hurst %.2f (long-range dependent), corr time %.3g\n\n",
		st.Mean, st.StdDev()/st.Mean, tr.Hurst(), st.CorrTime)

	model := mbac.TraceModel{Trace: tr}

	fmt.Printf("%-12s %-12s %-10s %-10s %-10s\n", "session Th", "window Tm", "pf", "target ok", "utilization")
	for _, th := range []float64{100, 1000, 10000} {
		thTilde := th / math.Sqrt(capacity/st.Mean)
		for _, tm := range []float64{0, thTilde} {
			var est mbac.Estimator
			if tm > 0 {
				est = mbac.NewExponentialEstimator(tm)
			} else {
				est = mbac.NewMemorylessEstimator()
			}
			ctrl, err := mbac.NewCertaintyEquivalent(targetP, st.Mean, st.StdDev())
			if err != nil {
				log.Fatal(err)
			}
			res, err := mbac.Simulate(mbac.SimConfig{
				Capacity:    capacity,
				Model:       model,
				Controller:  ctrl,
				Estimator:   est,
				HoldingTime: th,
				Seed:        21,
				Warmup:      20 * math.Max(thTilde, st.CorrTime),
				MaxTime:     simTime,
				Tc:          st.CorrTime,
				Tm:          tm,
				TargetP:     targetP,
			})
			if err != nil {
				log.Fatal(err)
			}
			ok := "yes"
			if res.Pf > 2*targetP { // allow CI slack at this run length
				ok = fmt.Sprintf("NO (%.0fx)", res.Pf/targetP)
			}
			window := "memoryless"
			if tm > 0 {
				window = fmt.Sprintf("T~h = %.3g", tm)
			}
			fmt.Printf("%-12g %-12s %-10.3g %-10s %.3f\n", th, window, res.Pf, ok, res.Utilization)
		}
	}
	fmt.Println("\nlesson: the memory window masks even long-range correlation — only the")
	fmt.Println("critical time-scale T~h = Th/sqrt(n) matters (paper Sections 5.3, Figs 11-12).")
}
