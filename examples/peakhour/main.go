// Peakhour: the scenario that motivates the paper's continuous-load model —
// "a well-designed robust MBAC should work well even for very high flow
// arrival rates, to cater for times when there is a surge in user demand".
//
// A link serves calls arriving as a Poisson stream. Off-peak the controller
// is rarely binding; during a surge it decides constantly, and every
// decision carries estimation risk. This example ramps the arrival rate
// from light load to far beyond capacity (and finally to the infinite-
// backlog worst case) and shows that:
//
//   - the naive memoryless MBAC degrades as the surge grows: its overflow
//     probability climbs toward the continuous-load ceiling;
//   - the robust configuration (memory = critical time-scale, adjusted
//     target) holds the QoS at every load, trading the surge into clean
//     call blocking instead of degraded service for admitted calls.
package main

import (
	"fmt"
	"log"
	"math"

	mbac "repro"
)

func main() {
	const (
		capacity = 100.0
		svr      = 0.3
		holding  = 300.0 // call duration
		corrT    = 1.0
		targetP  = 1e-2
		simTime  = 3e4
	)
	sys := mbac.System{Capacity: capacity, Mu: 1, Sigma: svr, Th: holding, Tc: corrT}
	plan, err := mbac.Plan(sys, targetP)
	if err != nil {
		log.Fatal(err)
	}

	run := func(lambda float64, robust bool) mbac.SimResult {
		pce, tm := targetP, 0.0
		var est mbac.Estimator = mbac.NewMemorylessEstimator()
		if robust {
			pce, tm = plan.AdjustedPce, plan.MemoryTm
			est = mbac.NewExponentialEstimator(tm)
		}
		ctrl, err := mbac.NewCertaintyEquivalent(pce, 1, svr)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mbac.Simulate(mbac.SimConfig{
			Capacity:    capacity,
			Model:       mbac.RCBR(1, svr, corrT),
			Controller:  ctrl,
			Estimator:   est,
			HoldingTime: holding,
			ArrivalRate: lambda,
			Seed:        9,
			Warmup:      20 * math.Max(tm, sys.ThTilde()),
			MaxTime:     simTime,
			Tc:          corrT,
			Tm:          tm,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("QoS target %g; robust plan: Tm = %.3g, pce = %.3g\n\n", targetP, plan.MemoryTm, plan.AdjustedPce)
	fmt.Printf("%-14s %-22s %-22s\n", "", "naive (memoryless)", "robust (Tm = T~h)")
	fmt.Printf("%-14s %-10s %-11s %-10s %-11s\n", "arrival rate", "pf", "blocking", "pf", "blocking")
	for _, lambda := range []float64{0.2, 0.35, 0.5, 1.0, 3.0, 0} {
		a := run(lambda, false)
		b := run(lambda, true)
		label := fmt.Sprintf("%.2g/s", lambda)
		if lambda == 0 {
			label = "infinite"
		}
		fmt.Printf("%-14s %-10.3g %-11.3g %-10.3g %-11.3g\n",
			label, a.Pf, a.BlockingProb, b.Pf, b.BlockingProb)
	}
	fmt.Println("\nlesson: under surge the naive controller converts demand into QoS violations")
	fmt.Println("for everyone already admitted; the robust controller converts it into blocking")
	fmt.Println("of new calls — the correct failure mode for an admission-controlled service.")
}
