// Capacity: a pure-planning example — no simulation. A network operator
// sizing a link for a new real-time service wants to know, before writing
// any measurement code:
//
//   - how many flows the link can carry at the desired QoS (and how the
//     statistical multiplexing safety margin shrinks relatively as the link
//     grows — the sqrt(n) economy of scale);
//   - what an MBAC must be configured to (memory window, adjusted
//     certainty-equivalent target) at several candidate link sizes;
//   - what the robustness costs in carried bandwidth versus a genie that
//     knows the traffic statistics (eq. 40).
//
// Everything here comes from the paper's closed-form results in the theory
// layer of the library.
package main

import (
	"fmt"
	"log"

	mbac "repro"
)

func main() {
	const (
		svr     = 0.3   // flow burstiness sigma/mu
		holding = 600.0 // expected session length
		corrT   = 2.0   // burst correlation time
		targetP = 1e-3  // QoS target
	)

	fmt.Println("link sizing for sigma/mu = 0.3 flows, pq = 1e-3")
	fmt.Printf("%-8s %-9s %-9s %-10s %-12s %-12s %-10s\n",
		"size n", "m*", "margin%", "window Tm", "adjusted pce", "robust cost", "cost%")
	for _, n := range []float64{50, 100, 200, 400, 800, 1600} {
		sys := mbac.System{Capacity: n, Mu: 1, Sigma: svr, Th: holding, Tc: corrT}
		mstar := mbac.AdmissibleFlows(n, 1, svr, targetP)
		plan, err := mbac.Plan(sys, targetP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %-9.1f %-9.2f %-10.3g %-12.3g %-12.3g %-10.3g\n",
			n, mstar, 100*(n-mstar)/n,
			plan.MemoryTm, plan.AdjustedPce, plan.UtilizationCost,
			100*plan.UtilizationCost/n)
	}

	fmt.Println("\nwhat certainty equivalence would cost if left unadjusted (sqrt-2 law):")
	for _, pq := range []float64{1e-3, 1e-5, 1e-7} {
		fmt.Printf("  target %.0e -> naive impulsive MBAC delivers %.3g (%.0fx worse)\n",
			pq, mbac.ImpulsiveOverflow(pq), mbac.ImpulsiveOverflow(pq)/pq)
	}

	fmt.Println("\ncontinuous load makes it worse still (the estimator errs repeatedly")
	fmt.Println("within each critical time-scale); memoryless pf at pce = pq = 1e-3:")
	for _, n := range []float64{100, 400, 1600} {
		sys := mbac.System{Capacity: n, Mu: 1, Sigma: svr, Th: holding, Tc: corrT}
		fmt.Printf("  n = %-5g -> pf = %.3g\n", n, mbac.OverflowIntegral(sys, targetP))
	}
	fmt.Println("\nlesson: the margin shrinks as 1/sqrt(n) (economy of scale), and the robust")
	fmt.Println("MBAC's price over a genie is well under a percent of capacity at any size.")
}
