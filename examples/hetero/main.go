// Hetero: heterogeneous flow populations (paper Section 5.4). Real links
// carry a mix — here, thin audio-like flows and fat video-like flows. The
// MBAC's cross-sectional variance estimator treats every flow as sharing
// one mean, so population heterogeneity inflates its variance estimate
// (between-class variance leaks in). The paper's claim: the scheme stays
// *robust* — the bias is conservative, costing some utilization but never
// QoS. This example measures exactly that, and also exercises the
// aggregate-only estimator (Section 7), which infers the variance from the
// temporal fluctuation of the aggregate and so sees the within-class
// variance instead.
package main

import (
	"fmt"
	"log"
	"math"

	mbac "repro"
)

func main() {
	const (
		capacity = 120.0
		targetP  = 1e-2
		holding  = 300.0
		corrT    = 1.0
		simTime  = 5e4
	)

	thin := mbac.RCBR(0.5, 0.3, corrT) // audio-ish: mean 0.5
	fat := mbac.RCBR(2.0, 0.3, corrT)  // video-ish: mean 2.0
	mixed, err := mbac.NewMixture([]mbac.TrafficModel{thin, fat}, []float64{0.7, 0.3})
	if err != nil {
		log.Fatal(err)
	}
	st := mixed.Stats()
	n := capacity / st.Mean
	thTilde := holding / math.Sqrt(n)
	fmt.Printf("population: mean %.3g, sigma %.3g (cv %.2f) — between-class variance dominates\n\n",
		st.Mean, st.StdDev(), st.StdDev()/st.Mean)

	run := func(name string, est mbac.Estimator, tm float64) {
		ctrl, err := mbac.NewCertaintyEquivalent(targetP, st.Mean, st.StdDev())
		if err != nil {
			log.Fatal(err)
		}
		res, err := mbac.Simulate(mbac.SimConfig{
			Capacity:    capacity,
			Model:       mixed,
			Controller:  ctrl,
			Estimator:   est,
			HoldingTime: holding,
			Seed:        5,
			Warmup:      20 * math.Max(tm, thTilde),
			MaxTime:     simTime,
			Tc:          corrT,
			Tm:          tm,
			TargetP:     targetP,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s pf = %-10.3g utilization = %.3f  mean flows = %.1f\n",
			name, res.Pf, res.Utilization, res.MeanFlows)
	}

	fmt.Println("all at certainty-equivalent target = QoS target, memory window = T~h:")
	run("cross-sectional var", mbac.NewExponentialEstimator(thTilde), thTilde)
	run("aggregate-only var", mbac.NewAggregateOnlyEstimator(thTilde, 10*corrT), thTilde)

	fmt.Println("\nreading the result (Section 5.4 / Section 7):")
	fmt.Println(" - the class-blind cross-sectional estimator over-estimates sigma (between-")
	fmt.Println("   class variance leaks in), so it admits fewer flows: conservative on QoS,")
	fmt.Println("   pays with utilization — robust exactly as the paper claims;")
	fmt.Println(" - the aggregate-only estimator sees only burst-scale fluctuation, missing")
	fmt.Println("   the slower class-composition churn: it recovers the utilization but can")
	fmt.Println("   overshoot the QoS target — the variance time-scale Tv must cover the")
	fmt.Println("   churn dynamics to be safe.")
}
