// Policingfree: the scenario that motivates measurement-based admission
// control in the first place (paper Section 1). Users must declare their
// traffic to get admitted, but declarations are loose — "it is usually
// difficult for the user to tightly characterize his traffic in advance" —
// and statistical models cannot be policed, so a parameter-based admission
// controller can be fooled in both directions:
//
//   - under-declaration (selfish or mistaken): flows send more than they
//     said; a static controller admits too many and *everyone's* QoS is
//     destroyed — permanently, because nothing re-checks;
//   - over-declaration (cautious users): a static controller strands
//     capacity that could have carried revenue traffic.
//
// The MBAC needs only a trivial declaration to bootstrap and then believes
// the measurements, so it neither melts down nor strands capacity.
package main

import (
	"fmt"
	"log"
	"math"

	mbac "repro"
)

func main() {
	const (
		capacity = 100.0
		declMu   = 1.0 // what users claim
		declSig  = 0.3
		holding  = 300.0
		corrT    = 1.0
		targetP  = 1e-2
		simTime  = 3e4
	)
	plan, err := mbac.Plan(mbac.System{
		Capacity: capacity, Mu: declMu, Sigma: declSig, Th: holding, Tc: corrT,
	}, targetP)
	if err != nil {
		log.Fatal(err)
	}

	run := func(model mbac.TrafficModel, static bool) mbac.SimResult {
		var ctrl mbac.Controller
		var est mbac.Estimator = mbac.NewMemorylessEstimator()
		tm := 0.0
		if static {
			c, err := mbac.NewPerfectKnowledge(capacity, declMu, declSig, targetP)
			if err != nil {
				log.Fatal(err)
			}
			ctrl = c
		} else {
			c, err := mbac.NewCertaintyEquivalent(plan.AdjustedPce, declMu, declSig)
			if err != nil {
				log.Fatal(err)
			}
			ctrl = c
			est = mbac.NewExponentialEstimator(plan.MemoryTm)
			tm = plan.MemoryTm
		}
		res, err := mbac.Simulate(mbac.SimConfig{
			Capacity:    capacity,
			Model:       model,
			Controller:  ctrl,
			Estimator:   est,
			HoldingTime: holding,
			Seed:        17,
			Warmup:      20 * math.Max(tm, holding/math.Sqrt(capacity)),
			MaxTime:     simTime,
			Tc:          corrT,
			Tm:          tm,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	scenarios := []struct {
		name  string
		model mbac.TrafficModel
	}{
		{"honest (as declared)", mbac.RCBR(1.0, 0.3, corrT)},
		{"under-declared +25%", mbac.RCBR(1.25, 0.4, corrT)},
		{"over-declared -20%", mbac.RCBR(0.8, 0.2, corrT)},
	}
	fmt.Printf("declared: mean %g, sigma %g; QoS target %g\n\n", declMu, declSig, targetP)
	fmt.Printf("%-22s %-26s %-26s\n", "", "declaration-based AC", "robust MBAC")
	fmt.Printf("%-22s %-10s %-15s %-10s %-15s\n", "actual traffic", "pf", "utilization", "pf", "utilization")
	for _, sc := range scenarios {
		a := run(sc.model, true)
		b := run(sc.model, false)
		fmt.Printf("%-22s %-10.3g %-15.3f %-10.3g %-15.3f\n",
			sc.name, a.Pf, a.Utilization, b.Pf, b.Utilization)
	}
	fmt.Println("\nlesson: a static controller is hostage to its users' honesty and accuracy;")
	fmt.Println("the MBAC trusts measurements instead of declarations and survives both")
	fmt.Println("directions of mis-declaration — the paper's case for MBAC, quantified.")
}
