package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/gateway"
	"repro/internal/server"
	"repro/internal/wire"
)

// startServer brings up a real gateway+server on loopback and returns the
// address plus the server for snapshot assertions.
func startServer(tb testing.TB, scfg server.Config) (*server.Server, string) {
	tb.Helper()
	if scfg.Gateway == nil {
		ctrl, err := core.NewCertaintyEquivalent(1e-6, 1, 1)
		if err != nil {
			tb.Fatal(err)
		}
		var lat atomic.Int64
		scfg.Gateway, err = gateway.New(gateway.Config{
			Capacity:     1e9,
			Controller:   ctrl,
			Estimator:    estimator.NewMemoryless(),
			Shards:       4,
			EstimateRing: 1,
			LatencyClock: func() int64 { return lat.Add(1) },
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if !srv.Draining() {
			srv.Shutdown(ctx)
		}
		<-done
	})
	return srv, ln.Addr().String()
}

func TestClientLifecycleOps(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := New(Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	d, err := c.Admit(ctx, 1, 2.5)
	if err != nil || !d.Admitted {
		t.Fatalf("admit: %+v, %v", d, err)
	}
	if err := c.UpdateRate(ctx, 1, 3.5); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := c.Touch(ctx, 1); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if err := c.Depart(ctx, 1); err != nil {
		t.Fatalf("depart: %v", err)
	}
	if err := c.Depart(ctx, 1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double depart: got %v, want ErrNotActive", err)
	}
	if err := c.UpdateRate(ctx, 1, -2); !errors.Is(err, ErrInvalidRate) {
		t.Fatalf("negative rate: got %v, want ErrInvalidRate", err)
	}
	d, err = c.Admit(ctx, 2, -1)
	if err != nil {
		t.Fatalf("invalid-rate admit transport error: %v", err)
	}
	if d.Admitted || d.Reason != gateway.ReasonInvalidRate {
		t.Fatalf("invalid-rate admit: %+v", d)
	}
}

func TestClientAdmitBatch(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := New(Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ds, err := c.AdmitBatch(context.Background(), []uint64{10, 11, 10}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 || !ds[0].Admitted || !ds[1].Admitted || ds[2].Reason != gateway.ReasonDuplicate {
		t.Fatalf("batch decisions: %+v", ds)
	}
	if _, err := c.AdmitBatch(context.Background(), []uint64{1}, nil); err == nil {
		t.Fatal("mismatched batch accepted")
	}
}

// TestConcurrentPipelining hammers one pooled connection from many
// goroutines: every reply must land on its own request (correlation), and
// the server must see coalesced batches (pipelining actually happened).
func TestConcurrentPipelining(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c, err := New(Config{Addr: addr, Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers, perWorker = 16, 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				flow := uint64(w*perWorker + i)
				d, err := c.Admit(ctx, flow, 1)
				if err != nil {
					errs <- err
					return
				}
				if !d.Admitted {
					errs <- errors.New("unexpected refusal")
					return
				}
				if err := c.Depart(ctx, flow); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if snap.Decisions != workers*perWorker {
		t.Fatalf("server served %d decisions, want %d", snap.Decisions, workers*perWorker)
	}
}

func TestRequestTimeout(t *testing.T) {
	// A listener that accepts and then goes silent: the request must fail
	// with a deadline error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()
	c, err := New(Config{Addr: ln.Addr().String(), RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()
	c, err := New(Config{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if err := c.Ping(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRefusalFailsPendingAndRedials drives the client into a rate-limit
// refusal, then checks the pool heals by redialing.
func TestRefusalFailsPendingAndRedials(t *testing.T) {
	_, addr := startServer(t, server.Config{FrameRate: 1})
	c, err := New(Config{Addr: addr, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil { // burns the single token
		t.Fatal(err)
	}
	var refused *RefusedError
	err = c.Ping(ctx) // immediately over the cap
	if !errors.As(err, &refused) || refused.Refusal != wire.RefuseRateLimited {
		t.Fatalf("got %v, want RefusedError(rate-limited)", err)
	}
	// The bucket refills within a second; the pool must redial on its own.
	time.Sleep(1100 * time.Millisecond)
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("pool did not heal after refusal: %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := New(Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Addr accepted")
	}
	if _, err := New(Config{Addr: "x", Conns: -1}); err == nil {
		t.Error("negative Conns accepted")
	}
}

// TestCloseRaceAgainstPipelinedAdmits hammers Close against concurrent
// pipelined admissions: every in-flight call must return promptly, and
// every call that loses to Close must fail with the typed ErrClosed —
// never hang on the writer path, never surface a raw socket error. Run
// with -race: the whole point is the retire-vs-write interleaving.
func TestCloseRaceAgainstPipelinedAdmits(t *testing.T) {
	ctx := context.Background()
	var id atomic.Uint64
	for round := 0; round < 8; round++ {
		_, addr := startServer(t, server.Config{})
		c, err := New(Config{Addr: addr, Conns: 3})
		if err != nil {
			t.Fatal(err)
		}
		const workers = 8
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				ids := make([]uint64, 4)
				rates := make([]float64, 4)
				for i := 0; ; i++ {
					var err error
					if (i+w)%2 == 0 {
						for j := range ids {
							ids[j] = id.Add(1)
							rates[j] = 1
						}
						_, err = c.AdmitBatch(ctx, ids, rates)
					} else {
						_, err = c.Admit(ctx, id.Add(1), 1)
					}
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("round %d: call failed with %v, want ErrClosed", round, err)
						}
						return
					}
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(round) * 500 * time.Microsecond)
		closed := time.Now()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(closed); d > 2*time.Second {
			t.Fatalf("round %d: Close blocked for %v", round, d)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: workers still blocked after Close", round)
		}
	}
}
