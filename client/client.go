// Package client is the Go client for the admission gateway's wire
// protocol (internal/wire, served by internal/server). It is pipelined —
// many requests may be in flight on one connection, correlated by request
// id — and pooled: requests round-robin across Config.Conns connections,
// each with a single reader goroutine demultiplexing responses to
// waiters. Concurrent callers sharing a connection naturally emit
// back-to-back frames, which is exactly the shape the server's
// per-connection micro-batcher coalesces into single AdmitBatch calls.
//
// Failure semantics: per-request errors (unknown flow, invalid rate)
// come back as ErrNotActive / ErrInvalidRate; a connection-scoped
// Refusal frame from the server (overloaded, draining, shed,
// rate-limited) fails every request pending on that connection with a
// *RefusedError and retires the connection. Retired connections are
// redialed lazily on next use, so a client survives a server restart or
// drain without being rebuilt.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gateway"
	"repro/internal/wire"
)

// Errors mapping the protocol's per-request statuses.
var (
	// ErrNotActive reports an operation on a flow the gateway does not
	// consider active (never admitted, departed, or lease-expired).
	ErrNotActive = errors.New("client: flow is not active")
	// ErrInvalidRate reports a rate the gateway refuses to accept
	// (negative, NaN, or infinite).
	ErrInvalidRate = errors.New("client: invalid rate")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: closed")
)

// RefusedError is a connection-scoped refusal from the server: the
// connection carrying the request was refused or closed for cause, and
// the request outcome is unknown (admits may or may not have landed —
// the gateway's leases reclaim the orphans either way).
type RefusedError struct{ Refusal wire.Refusal }

func (e *RefusedError) Error() string {
	return fmt.Sprintf("client: connection refused by server: %s", e.Refusal)
}

// Config parameterizes a Client.
type Config struct {
	// Addr is the server's TCP address (required).
	Addr string
	// Conns is the connection-pool size (default 1). More connections
	// spread load across the server's per-connection reader goroutines;
	// fewer concentrate pipelining and thus server-side batching.
	Conns int
	// DialTimeout bounds one dial (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request when the caller's context has no
	// earlier deadline (default 10s).
	RequestTimeout time.Duration
}

// Client is a pooled, pipelined protocol client. Safe for concurrent use.
type Client struct {
	cfg    Config
	conns  []*poolConn
	next   atomic.Uint64
	closed atomic.Bool
}

// New validates cfg and returns a Client. Connections are dialed lazily
// on first use, so New succeeds even while the server is still coming up.
func New(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("client: Addr is required")
	}
	if cfg.Conns < 0 {
		return nil, fmt.Errorf("client: Conns %d is invalid", cfg.Conns)
	}
	if cfg.Conns == 0 {
		cfg.Conns = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	c := &Client{cfg: cfg, conns: make([]*poolConn, cfg.Conns)}
	for i := range c.conns {
		c.conns[i] = &poolConn{client: c}
	}
	return c, nil
}

// Close fails all pending requests and closes every pooled connection.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, pc := range c.conns {
		pc.retire(ErrClosed)
	}
	return nil
}

// Admit asks the gateway to admit flowID at rate.
func (c *Client) Admit(ctx context.Context, flowID uint64, rate float64) (gateway.Decision, error) {
	res, err := c.roundTrip(ctx, func(dst []byte, reqID uint64) []byte {
		return wire.AppendAdmit(dst, reqID, flowID, rate)
	})
	if err != nil {
		return gateway.Decision{}, err
	}
	if res.op != wire.OpDecision {
		return gateway.Decision{}, fmt.Errorf("client: got %s in reply to Admit", res.op)
	}
	return fromWire(res.decision), nil
}

// AdmitBatch decides a whole batch in one request frame — one network
// round trip and one gateway AdmitBatch call for the lot. Decisions come
// back in request order, one per flow.
func (c *Client) AdmitBatch(ctx context.Context, flowIDs []uint64, rates []float64) ([]gateway.Decision, error) {
	if len(flowIDs) != len(rates) || len(flowIDs) == 0 || len(flowIDs) > wire.MaxBatch {
		return nil, fmt.Errorf("client: invalid batch: %d flows, %d rates (max %d)",
			len(flowIDs), len(rates), wire.MaxBatch)
	}
	res, err := c.roundTrip(ctx, func(dst []byte, reqID uint64) []byte {
		dst, _ = wire.AppendAdmitBatch(dst, reqID, flowIDs, rates)
		return dst
	})
	if err != nil {
		return nil, err
	}
	if res.op != wire.OpDecisionBatch || len(res.decisions) != len(flowIDs) {
		return nil, fmt.Errorf("client: got %s with %d decisions in reply to AdmitBatch(%d)",
			res.op, len(res.decisions), len(flowIDs))
	}
	out := make([]gateway.Decision, len(res.decisions))
	for i, d := range res.decisions {
		out[i] = fromWire(d)
	}
	return out, nil
}

// UpdateRate republishes flowID's rate for the next measurement tick.
func (c *Client) UpdateRate(ctx context.Context, flowID uint64, rate float64) error {
	return c.ackCall(ctx, func(dst []byte, reqID uint64) []byte {
		return wire.AppendUpdateRate(dst, reqID, flowID, rate)
	})
}

// Touch renews flowID's lease without changing its rate.
func (c *Client) Touch(ctx context.Context, flowID uint64) error {
	return c.ackCall(ctx, func(dst []byte, reqID uint64) []byte {
		return wire.AppendTouch(dst, reqID, flowID)
	})
}

// Depart releases flowID's admission slot.
func (c *Client) Depart(ctx context.Context, flowID uint64) error {
	return c.ackCall(ctx, func(dst []byte, reqID uint64) []byte {
		return wire.AppendDepart(dst, reqID, flowID)
	})
}

// Ping round-trips a liveness probe (also a lease-keepalive for the
// connection's idle timer).
func (c *Client) Ping(ctx context.Context) error {
	res, err := c.roundTrip(ctx, func(dst []byte, reqID uint64) []byte {
		return wire.AppendPing(dst, reqID)
	})
	if err != nil {
		return err
	}
	if res.op != wire.OpPong {
		return fmt.Errorf("client: got %s in reply to Ping", res.op)
	}
	return nil
}

// ackCall issues a request whose reply is an Ack and maps its status.
func (c *Client) ackCall(ctx context.Context, enc func([]byte, uint64) []byte) error {
	res, err := c.roundTrip(ctx, enc)
	if err != nil {
		return err
	}
	if res.op != wire.OpAck {
		return fmt.Errorf("client: got %s, want Ack", res.op)
	}
	switch res.status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotActive:
		return ErrNotActive
	case wire.StatusInvalidRate:
		return ErrInvalidRate
	default:
		return fmt.Errorf("client: unknown status %d", res.status)
	}
}

// fromWire rebuilds the gateway's decision struct from its wire form.
func fromWire(d wire.Decision) gateway.Decision {
	return gateway.Decision{
		Admitted:   d.Reason == uint8(gateway.ReasonAdmitted),
		Reason:     gateway.Reason(d.Reason),
		Admissible: d.Admissible,
		Active:     d.Active,
	}
}

// result is the demultiplexed reply to one request. Slices are owned by
// the result (copied out of the reader's reused frame).
type result struct {
	op        wire.Op
	status    wire.Status
	decision  wire.Decision
	decisions []wire.Decision
}

// call is one in-flight request's rendezvous.
type call struct {
	done chan struct{}
	res  result
	err  error
}

// roundTrip sends one encoded request on a pooled connection and waits
// for its correlated reply, honoring ctx and the request timeout.
func (c *Client) roundTrip(ctx context.Context, enc func(dst []byte, reqID uint64) []byte) (result, error) {
	if c.closed.Load() {
		return result{}, ErrClosed
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}
	pc := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	cl, reqID, err := pc.send(ctx, enc)
	if err != nil {
		return result{}, err
	}
	select {
	case <-cl.done:
		return cl.res, cl.err
	case <-ctx.Done():
		pc.forget(reqID)
		return result{}, ctx.Err()
	}
}

// poolConn is one pooled connection: a lazily dialed socket, a writer
// mutex serializing encode+write, and a reader goroutine routing replies
// to pending calls by request id.
//
// Lock order: wmu is never held while waiting on the network with pmu
// wanted — pmu guards only in-memory state (socket identity, pending
// calls, generation), so retire/Close always complete immediately. The
// socket write itself happens outside pmu against a captured *net.Conn;
// a concurrent retire closes the socket, which fails the blocked write
// instead of waiting for it.
type poolConn struct {
	client *Client

	wmu sync.Mutex // serializes encode+write; owns enc
	enc []byte     // encode scratch, guarded by wmu

	pmu     sync.Mutex // guards nc, pending, gen, nextReq; never held across I/O
	nc      net.Conn
	nextReq uint64 // monotone across redials, so reqIDs never collide between sockets
	pending map[uint64]*call
	gen     uint64 // bumped on retire so a stale reader or writer can't touch a redial
}

// send dials if needed, registers a call, and writes the request frame.
func (p *poolConn) send(ctx context.Context, encode func([]byte, uint64) []byte) (*call, uint64, error) {
	p.wmu.Lock()
	defer p.wmu.Unlock()

	p.pmu.Lock()
	if p.client.closed.Load() {
		p.pmu.Unlock()
		return nil, 0, ErrClosed
	}
	if p.nc == nil {
		// Dial outside pmu so Close/retire never waits on the network;
		// wmu keeps concurrent senders from double-dialing this slot.
		p.pmu.Unlock()
		nc, err := p.dial(ctx)
		if err != nil {
			return nil, 0, err
		}
		p.pmu.Lock()
		if p.client.closed.Load() {
			p.pmu.Unlock()
			nc.Close()
			return nil, 0, ErrClosed
		}
		p.nc = nc
		p.pending = make(map[uint64]*call)
		go p.readLoop(nc, p.gen)
	}
	nc, gen := p.nc, p.gen
	p.nextReq++
	reqID := p.nextReq
	cl := &call{done: make(chan struct{})}
	p.pending[reqID] = cl
	p.pmu.Unlock()

	// Encode and write against the captured socket, with no lock a
	// concurrent Close would need: Close closes the socket, which fails
	// this write immediately.
	p.enc = encode(p.enc[:0], reqID)
	if d, ok := ctx.Deadline(); ok {
		nc.SetWriteDeadline(d)
	}
	if _, err := nc.Write(p.enc); err != nil {
		err = fmt.Errorf("client: write: %w", err)
		p.failConn(nc, gen, err)
		if p.client.closed.Load() {
			// The write lost to a concurrent Close (which already failed
			// the registered call): surface the typed error, not the
			// incidental socket error.
			return nil, 0, ErrClosed
		}
		return nil, 0, err
	}
	return cl, reqID, nil
}

// dial establishes a socket. No poolConn locks are required; the caller
// installs the socket under pmu.
func (p *poolConn) dial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{Timeout: p.client.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", p.client.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", p.client.cfg.Addr, err)
	}
	return nc, nil
}

// forget abandons a call the caller stopped waiting for (context expiry);
// a late reply for it is dropped by the reader.
func (p *poolConn) forget(reqID uint64) {
	p.pmu.Lock()
	delete(p.pending, reqID)
	p.pmu.Unlock()
}

// retire fails all pending calls and closes the socket; the next send
// redials. It takes only pmu, so it returns promptly even while a send is
// blocked mid-write or mid-dial on this slot.
func (p *poolConn) retire(err error) {
	p.pmu.Lock()
	p.retireLocked(err)
	p.pmu.Unlock()
}

// retireLocked closes the socket first — unblocking any in-flight write —
// then fails every pending call. Caller holds pmu.
func (p *poolConn) retireLocked(err error) {
	if p.nc != nil {
		p.nc.Close()
		p.nc = nil
	}
	p.gen++ // invalidate the reader/writer that served this socket
	for id, cl := range p.pending {
		delete(p.pending, id)
		cl.err = err
		close(cl.done)
	}
}

// readLoop demultiplexes replies from one socket until it dies. gen ties
// the loop to the socket it was started for, so a loop outliving a
// retire/redial cycle cannot fail the new socket's calls.
func (p *poolConn) readLoop(nc net.Conn, gen uint64) {
	rd := wire.NewReader(nc)
	var f wire.Frame
	for {
		if err := rd.Next(&f); err != nil {
			p.failConn(nc, gen, readErr(err))
			return
		}
		if f.Op == wire.OpRefusal {
			// Connection-scoped: the server is closing us for cause.
			p.failConn(nc, gen, &RefusedError{Refusal: f.Refusal})
			return
		}
		p.pmu.Lock()
		cl := p.pending[f.ReqID]
		delete(p.pending, f.ReqID)
		p.pmu.Unlock()
		if cl == nil {
			continue // reply to a forgotten (timed-out) call
		}
		cl.res = result{op: f.Op, status: f.Status, decision: f.Decision}
		if f.Op == wire.OpDecisionBatch {
			cl.res.decisions = append([]wire.Decision(nil), f.Decisions...)
		}
		close(cl.done)
	}
}

// failConn retires the pool slot only if it still serves the generation
// the caller observed — a stale reader or a send whose write lost to a
// retire/redial cycle must not fail the new socket's calls.
func (p *poolConn) failConn(nc net.Conn, gen uint64, err error) {
	p.pmu.Lock()
	if p.gen == gen && p.nc == nc {
		p.retireLocked(err)
	}
	p.pmu.Unlock()
}

// readErr normalizes reader errors into something actionable for callers.
func readErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("client: connection closed by server: %w", err)
	}
	return fmt.Errorf("client: read: %w", err)
}
